"""Clean-loss + backdoor-penalty unlearning (federated server-side repair).

Ported from momalab's federated backdoor unlearning (SNIPPETS.md snippet 1)
onto the :class:`Defense` protocol: continue training the aggregated global
model on the defender's clean data while *penalizing* low loss on
synthesized backdoor inputs, i.e. minimize

    L = CE(clean) - penalty * CE(triggered -> target)

so gradient descent simultaneously preserves clean accuracy and pushes
triggered inputs away from the attacker's target class.  The learning rate
follows the snippet's schedule ``base_lr / 2**(unlearn_count / 10)`` — each
time the server re-runs the defense at a later round it anneals the step
size so repeated unlearning does not erode the converging global model.

Gradient *ascent* on the backdoor loss is unbounded, so the penalty term is
dropped for any batch whose backdoor cross-entropy already exceeds
``loss_ceiling`` — at that point the triggered inputs are far from the
target class and only the clean objective remains.
"""

from __future__ import annotations

import numpy as np

from ..data.dataset import DataLoader
from ..nn import SGD, Tensor, cross_entropy
from ..nn.module import Module
from .base import Defense, DefenderData, DefenseReport

__all__ = ["FederatedUnlearningDefense"]


class FederatedUnlearningDefense(Defense):
    """Server-side clean-loss + backdoor-penalty unlearning.

    Parameters
    ----------
    lr:
        Base learning rate, annealed as ``lr / 2**(unlearn_count / 10)``.
    epochs:
        Unlearning epochs (snippet default 6).
    penalty:
        Weight of the negative backdoor-loss term.
    loss_ceiling:
        Backdoor cross-entropy above which the penalty term is dropped for
        a batch (keeps the ascent direction bounded).
    unlearn_count:
        How many times unlearning has already been applied to this model
        lineage; drives the learning-rate annealing.
    """

    name = "fed_unlearn"

    def __init__(
        self,
        lr: float = 0.01,
        epochs: int = 6,
        penalty: float = 0.5,
        loss_ceiling: float = 8.0,
        batch_size: int = 32,
        unlearn_count: int = 0,
        seed: int = 0,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if penalty < 0:
            raise ValueError(f"penalty must be >= 0, got {penalty}")
        if unlearn_count < 0:
            raise ValueError(f"unlearn_count must be >= 0, got {unlearn_count}")
        self.lr = lr
        self.epochs = epochs
        self.penalty = penalty
        self.loss_ceiling = loss_ceiling
        self.batch_size = batch_size
        self.unlearn_count = unlearn_count
        self.seed = seed

    def effective_lr(self) -> float:
        """Annealed learning rate for the current unlearn count."""
        return self.lr / (2.0 ** (self.unlearn_count / 10.0))

    def apply(self, model: Module, data: DefenderData) -> DefenseReport:
        """Unlearn the backdoor from ``model`` in place."""
        if data.attack is None:
            raise ValueError("fed_unlearn needs the attack handle to synthesize backdoor data")
        # Triggered copies of the clean data labeled with the attacker's
        # target: high cross-entropy here means the backdoor is gone.
        backdoor_set = data.attack.poisoned_copy(data.clean_train)
        lr = self.effective_lr()
        optimizer = SGD(model.parameters(), lr=lr, momentum=0.9)
        rng = np.random.default_rng(self.seed)
        clean_loader = DataLoader(
            data.clean_train, batch_size=self.batch_size, shuffle=True, rng=rng
        )
        backdoor_loader = DataLoader(
            backdoor_set, batch_size=self.batch_size, shuffle=True, rng=rng
        )
        clean_mean = float("nan")
        backdoor_mean = float("nan")
        penalized_batches = 0
        model.train()
        for _epoch in range(self.epochs):
            clean_total = 0.0
            backdoor_total = 0.0
            batches = 0
            for (images, labels), (bd_images, bd_labels) in zip(clean_loader, backdoor_loader):
                clean_loss = cross_entropy(model(Tensor(images)), labels)
                backdoor_loss = cross_entropy(model(Tensor(bd_images)), bd_labels)
                apply_penalty = (
                    self.penalty > 0 and backdoor_loss.item() < self.loss_ceiling
                )
                if apply_penalty:
                    loss = clean_loss + (-self.penalty) * backdoor_loss
                    penalized_batches += 1
                else:
                    loss = clean_loss
                optimizer.zero_grad(set_to_none=False)
                loss.backward()
                optimizer.step()
                clean_total += clean_loss.item()
                backdoor_total += backdoor_loss.item()
                batches += 1
            clean_mean = clean_total / max(batches, 1)
            backdoor_mean = backdoor_total / max(batches, 1)
        model.eval()
        return DefenseReport(
            name=self.name,
            details={
                "epochs_run": self.epochs,
                "lr": lr,
                "unlearn_count": self.unlearn_count,
                "clean_loss": clean_mean,
                "backdoor_loss": backdoor_mean,
                "penalized_batches": penalized_batches,
            },
        )
