"""BNP baseline (Zheng et al., 2022, "Pre-activation Distributions Expose
Backdoor Neurons"): batch-norm statistic pruning.

A model trained on poisoned data bakes the *mixture* distribution (clean +
triggered) into its batch-norm running statistics.  Feeding only clean data
and comparing the observed per-channel pre-activation statistics against
the stored running statistics exposes channels whose statistics were
dominated by the trigger: their KL divergence is an intra-layer outlier.
Channels with divergence above ``mean + u * std`` are pruned.

This is a natural companion to CLP (both are one-shot, hyperparameter-light
pruning rules) and extends the reproduction's baseline set beyond the
paper's six.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..data.dataset import ImageDataset
from ..models.pruning_utils import FilterRef, PruningMask
from ..nn import Tensor, no_grad
from ..nn.layers import BatchNorm2d, Conv2d
from ..nn.module import Module
from .base import Defense, DefenderData, DefenseReport

__all__ = ["BNPDefense", "bn_statistic_divergence"]


def _gaussian_kl(
    mean_p: np.ndarray, var_p: np.ndarray, mean_q: np.ndarray, var_q: np.ndarray
) -> np.ndarray:
    """KL(N(p) || N(q)) per channel, numerically guarded."""
    var_p = np.maximum(var_p, 1e-8)
    var_q = np.maximum(var_q, 1e-8)
    return 0.5 * (
        np.log(var_q / var_p) + (var_p + (mean_p - mean_q) ** 2) / var_q - 1.0
    )


def _conv_before_bn(model: Module) -> Dict[str, str]:
    """Map each BatchNorm2d dot-path to the Conv2d that feeds it."""
    items = list(model.named_modules())
    mapping: Dict[str, str] = {}
    last_conv: Optional[str] = None
    for name, module in items:
        if isinstance(module, Conv2d):
            last_conv = name
        elif isinstance(module, BatchNorm2d):
            if last_conv is not None:
                convs = dict(items)
                conv = convs[last_conv]
                if isinstance(conv, Conv2d) and conv.out_channels == module.num_features:
                    mapping[name] = last_conv
            last_conv = None
    return mapping


def bn_statistic_divergence(
    model: Module, clean_data: ImageDataset, batch_size: int = 128
) -> Dict[str, np.ndarray]:
    """Per-channel KL between clean-data BN input stats and running stats.

    Returns ``{bn_layer_name: (num_features,) divergences}``.  Statistics
    are accumulated over all of ``clean_data`` with hooks on the conv that
    feeds each BN (the BN's input = the conv's output).
    """
    mapping = _conv_before_bn(model)
    if not mapping:
        return {}
    convs = dict(model.named_modules())
    sums: Dict[str, np.ndarray] = {}
    sq_sums: Dict[str, np.ndarray] = {}
    counts: Dict[str, int] = {}
    handles = []

    def make_hook(bn_name: str):
        def hook(_module, output) -> None:
            data = output.data
            sums[bn_name] = sums.get(bn_name, 0.0) + data.sum(axis=(0, 2, 3))
            sq_sums[bn_name] = sq_sums.get(bn_name, 0.0) + (data ** 2).sum(axis=(0, 2, 3))
            counts[bn_name] = counts.get(bn_name, 0) + data.shape[0] * data.shape[2] * data.shape[3]

        return hook

    for bn_name, conv_name in mapping.items():
        handles.append(convs[conv_name].register_forward_hook(make_hook(bn_name)))
    model.eval()
    try:
        with no_grad():
            for start in range(0, len(clean_data), batch_size):
                model(Tensor(clean_data.images[start : start + batch_size]))
    finally:
        for handle in handles:
            handle.remove()

    divergences: Dict[str, np.ndarray] = {}
    for bn_name in mapping:
        bn = convs[bn_name]
        count = counts[bn_name]
        clean_mean = sums[bn_name] / count
        clean_var = sq_sums[bn_name] / count - clean_mean ** 2
        divergences[bn_name] = _gaussian_kl(
            clean_mean, clean_var, bn.running_mean, bn.running_var
        )
    return divergences


class BNPDefense(Defense):
    """Batch-norm statistic pruning.

    Parameters
    ----------
    u:
        Intra-layer outlier threshold in standard deviations (as in the
        original work; 3.0 default).
    """

    name = "bnp"

    def __init__(self, u: float = 3.0) -> None:
        if u <= 0:
            raise ValueError(f"u must be positive, got {u}")
        self.u = u

    def apply(self, model: Module, data: DefenderData) -> DefenseReport:
        """Prune channels whose BN statistics diverge from clean-data stats."""
        divergences = bn_statistic_divergence(model, data.clean_train)
        mapping = _conv_before_bn(model)
        mask = PruningMask(model)
        pruned: List[str] = []
        for bn_name, values in divergences.items():
            if len(values) < 2:
                continue
            threshold = values.mean() + self.u * values.std()
            conv_name = mapping[bn_name]
            for index in np.flatnonzero(values > threshold):
                ref = FilterRef(conv_name, int(index))
                mask.prune(ref)
                pruned.append(str(ref))
        return DefenseReport(
            name=self.name,
            details={"num_pruned": len(pruned), "pruned": pruned, "u": self.u},
        )
