"""FT-SAM baseline (Zhu et al., 2023): fine-tuning with sharpness-aware
minimization.

Identical data usage to plain FT (clean data only), but every update is a
SAM two-step: perturb the weights to the ascent point within a ρ-ball, take
the gradient there, apply it at the original weights.  Zhu et al. show this
shrinks the backdoor-related neurons' weight norms far more effectively than
vanilla fine-tuning — it is the strongest baseline in the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from ..data.dataset import DataLoader, ImageDataset
from ..nn import SAM, SGD, Tensor, cross_entropy, no_grad
from ..nn.engine.training import training_step
from ..nn.module import Module
from .base import Defense, DefenderData, DefenseReport

__all__ = ["FTSAMDefense"]


def _val_loss(model: Module, dataset: ImageDataset, batch_size: int = 128) -> float:
    model.eval()
    total, count = 0.0, 0
    with no_grad():
        for start in range(0, len(dataset), batch_size):
            images = dataset.images[start : start + batch_size]
            labels = dataset.labels[start : start + batch_size]
            total += cross_entropy(model(Tensor(images)), labels, reduction="sum").item()
            count += len(labels)
    return total / max(count, 1)


class FTSAMDefense(Defense):
    """Sharpness-aware fine-tuning on clean data.

    Parameters
    ----------
    rho:
        SAM perturbation radius (0.05 is the FT-SAM paper default; larger
        values remove backdoors more aggressively at some clean-accuracy
        cost).
    lr, epochs, patience, batch_size, seed:
        Fine-tuning hyperparameters with early stopping on clean val loss.
    """

    name = "ft_sam"

    def __init__(
        self,
        rho: float = 0.05,
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 5e-4,
        epochs: int = 20,
        patience: int = 5,
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        self.rho = rho
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.epochs = epochs
        self.patience = patience
        self.batch_size = batch_size
        self.seed = seed

    def apply(self, model: Module, data: DefenderData) -> DefenseReport:
        """Sharpness-aware fine-tune on clean data (early-stopped)."""
        params = model.parameters()
        base = SGD(params, lr=self.lr, momentum=self.momentum, weight_decay=self.weight_decay)
        sam = SAM(params, base, rho=self.rho)
        loader = DataLoader(
            data.clean_train,
            batch_size=min(self.batch_size, max(1, len(data.clean_train))),
            shuffle=True,
            rng=np.random.default_rng(self.seed),
        )

        history: List[float] = []
        best_val = _val_loss(model, data.clean_val)
        best_state: Dict[str, np.ndarray] = model.state_dict()
        stall = 0
        stop_reason = f"reached epochs={self.epochs}"
        for _epoch in range(self.epochs):
            model.train()
            epoch_loss, batches = 0.0, 0
            for images, labels in loader:
                signature = (images.shape, images.dtype.str)
                batch = Tensor(images)
                with training_step(signature):
                    loss = cross_entropy(model(batch), labels)
                    loss.backward()
                sam.first_step(zero_grad=True)
                with training_step(signature):
                    second_loss = cross_entropy(model(batch), labels)
                    second_loss.backward()
                sam.second_step(zero_grad=True)
                epoch_loss += loss.item()
                batches += 1
            history.append(epoch_loss / max(batches, 1))
            val = _val_loss(model, data.clean_val)
            if val < best_val:
                best_val = val
                best_state = model.state_dict()
                stall = 0
            else:
                stall += 1
                if stall >= self.patience:
                    stop_reason = f"validation loss stalled for {self.patience} epochs"
                    break
        model.load_state_dict(best_state)
        model.eval()
        return DefenseReport(
            name=self.name,
            details={"epochs_run": len(history), "train_losses": history, "stop_reason": stop_reason},
        )
