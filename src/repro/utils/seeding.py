"""Deterministic seeding helpers.

Every stochastic component in the library takes an explicit generator or
seed; these helpers derive independent child seeds from a root seed so that
trials are reproducible yet decorrelated.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["derive_seed", "seed_sequence", "make_rng"]


def derive_seed(root: int, *labels) -> int:
    """Derive a child seed from a root seed and any hashable labels."""
    mix = np.random.SeedSequence([root & 0xFFFFFFFF, abs(hash(labels)) & 0xFFFFFFFF])
    return int(mix.generate_state(1)[0])


def seed_sequence(root: int, count: int) -> Iterator[int]:
    """Yield ``count`` decorrelated seeds derived from ``root``."""
    children = np.random.SeedSequence(root).spawn(count)
    for child in children:
        yield int(child.generate_state(1)[0])


def make_rng(seed: int) -> np.random.Generator:
    """Create a generator from an integer seed."""
    return np.random.default_rng(seed)
