"""Timing aggregation shared by microbenchmarks and the serving gateway.

Every JSON the repo emits with latency numbers (``BENCH_engine.json``,
``BENCH_orchestrator.json``, ``BENCH_serving.json``, the gateway's live
``stats()``) should compute its percentiles through :func:`latency_summary`
so "p99" means the same thing everywhere: linear-interpolated quantiles over
the raw per-event samples, reported in milliseconds when the samples are.

:func:`best_of_seconds` is the micro-benchmark primitive the engine bench
has used since PR 2 (best mean over ``repeats`` timed groups of ``number``
calls, first call warming caches), promoted here so other benches stop
hand-rolling ``time.perf_counter`` loops.

:func:`hard_timeout` is a wall-clock guard for tests that drive queues and
worker threads: a wedged queue fails loudly with a :class:`TimeoutError`
instead of hanging CI.  It uses ``SIGALRM`` in the main thread (exact,
interrupts blocking waits) and falls back to ``_thread.interrupt_main``
elsewhere.
"""

from __future__ import annotations

import contextlib
import signal
import threading
import time
from typing import Callable, Dict, Iterator, Sequence

__all__ = ["percentiles", "latency_summary", "best_of_seconds", "hard_timeout"]


def percentiles(samples: Sequence[float], qs: Sequence[float]) -> Dict[str, float]:
    """Linear-interpolated percentiles keyed ``"p<q>"`` (e.g. ``"p99"``).

    ``qs`` are percent values in [0, 100].  Empty input yields an empty dict
    rather than NaNs so JSON stays clean when a mix served zero requests.
    """
    if not len(samples):
        return {}
    ordered = sorted(float(s) for s in samples)
    result: Dict[str, float] = {}
    last = len(ordered) - 1
    for q in qs:
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile out of range: {q}")
        pos = q / 100.0 * last
        lo = int(pos)
        hi = min(lo + 1, last)
        frac = pos - lo
        key = f"p{q:g}"
        result[key] = ordered[lo] * (1.0 - frac) + ordered[hi] * frac
    return result


def latency_summary(samples: Sequence[float], qs: Sequence[float] = (50.0, 90.0, 99.0)) -> Dict[str, float]:
    """Count/mean/min/max plus :func:`percentiles` over latency samples."""
    if not len(samples):
        return {"count": 0}
    values = [float(s) for s in samples]
    summary: Dict[str, float] = {
        "count": len(values),
        "mean": sum(values) / len(values),
        "min": min(values),
        "max": max(values),
    }
    summary.update(percentiles(values, qs))
    return summary


def best_of_seconds(fn: Callable[[], object], repeats: int = 5, number: int = 3) -> float:
    """Best mean seconds per call over ``repeats`` groups of ``number`` calls.

    The first (untimed) call warms caches — BLAS thread pools, arenas,
    tracing — so the measurement reflects steady state.
    """
    fn()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(number):
            fn()
        best = min(best, (time.perf_counter() - start) / number)
    return best


@contextlib.contextmanager
def hard_timeout(seconds: float, message: str = "wall-clock guard expired") -> Iterator[None]:
    """Raise :class:`TimeoutError` in the protected block after ``seconds``.

    Main thread: ``SIGALRM`` (interrupts blocking syscalls like
    ``queue.get``).  Other threads / platforms without ``SIGALRM``: a
    watchdog thread interrupts the main thread, which surfaces as
    :class:`KeyboardInterrupt` converted here when the guard itself owns
    the block.  Guards do not nest across both mechanisms.
    """
    use_alarm = (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if use_alarm:
        def _on_alarm(signum, frame):
            raise TimeoutError(f"{message} after {seconds:.1f}s")

        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, seconds)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
    else:
        import _thread

        fired = threading.Event()

        def _watchdog():
            if not fired.wait(seconds):
                _thread.interrupt_main()

        watchdog = threading.Thread(target=_watchdog, daemon=True, name="hard-timeout")
        watchdog.start()
        try:
            yield
        except KeyboardInterrupt:
            raise TimeoutError(f"{message} after {seconds:.1f}s") from None
        finally:
            fired.set()
