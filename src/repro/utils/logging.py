"""Minimal structured logging for long-running experiment harnesses.

The library logs through a single stderr handler on the ``repro`` root
logger.  Verbosity is controlled three ways, in increasing precedence:

- the default (``INFO``),
- the ``REPRO_LOG_LEVEL`` environment variable (name like ``DEBUG`` or a
  numeric level), applied to the ``repro`` root on every call, and
- an explicit ``level`` argument to :func:`get_logger`, applied to the
  *named* logger each call (not just the first — earlier versions latched
  the first caller's level forever).

:func:`log_event` renders machine-greppable ``event=... key=value`` lines
for per-task telemetry (the orchestrator's queued/started/finished/failed
stream).
"""

from __future__ import annotations

import json
import logging
import os
import sys
import time
from typing import Optional

__all__ = ["get_logger", "log_event", "Timer", "LOG_LEVEL_ENV"]

LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"


def _env_level() -> Optional[int]:
    """Parse ``REPRO_LOG_LEVEL`` (name or number); None if unset/invalid."""
    raw = os.environ.get(LOG_LEVEL_ENV, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        level = logging.getLevelName(raw.upper())
        return level if isinstance(level, int) else None


def get_logger(name: str = "repro", level: Optional[int] = None) -> logging.Logger:
    """Return a configured library logger (stderr, single handler).

    ``level`` (when given) is applied to the named logger on every call;
    ``REPRO_LOG_LEVEL`` sets the ``repro`` root level.
    """
    root = logging.getLogger("repro")
    # Configure off the logger's own handler list, not a module flag: a
    # re-import or a test's logging teardown can clear handlers while the
    # flag stays latched, and a module-level flag would double-install on
    # importlib.reload.  Either way this stays single-handler.
    if not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s", "%H:%M:%S")
        )
        root.addHandler(handler)
        root.setLevel(logging.INFO)
        root.propagate = False
    env_level = _env_level()
    if env_level is not None:
        root.setLevel(env_level)
    logger = logging.getLogger(name)
    if level is not None:
        logger.setLevel(level)
    return logger


def _format_value(value) -> str:
    if isinstance(value, float):
        # f-strings render nan/inf as-is; keep them greppable, not "nan="
        # artifacts that break downstream float() parsing expectations.
        return f"{value:.3f}" if value == value and abs(value) != float("inf") else str(value)
    if isinstance(value, (dict, list, tuple)):
        # Nested payloads: compact JSON keeps the line one-token-per-field.
        try:
            return json.dumps(value, sort_keys=True, separators=(",", ":"), default=str)
        except (TypeError, ValueError):
            return json.dumps(str(value))
    text = str(value)
    if " " in text or "=" in text or not text:
        return json.dumps(text, ensure_ascii=False)
    return text


def log_event(logger: logging.Logger, event: str, **fields) -> None:
    """Emit one structured ``event=<name> key=value ...`` line at INFO."""
    parts = [f"event={event}"]
    parts.extend(f"{key}={_format_value(value)}" for key, value in sorted(fields.items()))
    logger.info("%s", " ".join(parts))


class Timer:
    """Context manager measuring wall-clock seconds.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0
    True
    """

    def __init__(self, label: Optional[str] = None, logger: Optional[logging.Logger] = None) -> None:
        self.label = label
        self.logger = logger
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start
        if self.label and self.logger:
            self.logger.info("%s took %.2fs", self.label, self.elapsed)
