"""Minimal structured logging for long-running experiment harnesses."""

from __future__ import annotations

import logging
import sys
import time
from typing import Optional

__all__ = ["get_logger", "Timer"]

_CONFIGURED = False


def get_logger(name: str = "repro", level: int = logging.INFO) -> logging.Logger:
    """Return a configured library logger (stderr, single handler)."""
    global _CONFIGURED
    root = logging.getLogger("repro")
    if not _CONFIGURED:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s", "%H:%M:%S")
        )
        root.addHandler(handler)
        root.setLevel(level)
        root.propagate = False
        _CONFIGURED = True
    return logging.getLogger(name)


class Timer:
    """Context manager measuring wall-clock seconds.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0
    True
    """

    def __init__(self, label: Optional[str] = None, logger: Optional[logging.Logger] = None) -> None:
        self.label = label
        self.logger = logger
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.elapsed = time.perf_counter() - self._start
        if self.label and self.logger:
            self.logger.info("%s took %.2fs", self.label, self.elapsed)
