"""Shared utilities: seeding, logging, timing."""

from .logging import Timer, get_logger, log_event
from .seeding import derive_seed, make_rng, seed_sequence
from .timing import best_of_seconds, hard_timeout, latency_summary, percentiles

__all__ = [
    "derive_seed",
    "seed_sequence",
    "make_rng",
    "get_logger",
    "log_event",
    "Timer",
    "percentiles",
    "latency_summary",
    "best_of_seconds",
    "hard_timeout",
]
