"""Counters, gauges, and histograms with a JSON snapshot API.

The registry is the *aggregated* half of the telemetry subsystem: events
stream point-in-time facts, metrics fold them into cheap running state a
``stats()`` endpoint or the ``repro watch`` dashboard can poll without
replaying a log.  All types are thread-safe (the serving drain thread,
HTTP handler threads, and the orchestrator main loop all write here).

- :class:`Counter` — monotonically increasing total.
- :class:`Gauge` — last-write-wins instantaneous value (queue depth).
- :class:`Histogram` — count/sum/min/max plus a bounded reservoir of the
  most recent samples, summarized through the repo-wide
  :func:`repro.utils.timing.latency_summary` so "p99" means the same thing
  here as in every ``BENCH_*.json``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, Optional

from ..utils.timing import latency_summary

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonic counter; ``inc`` with a negative amount is rejected."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def snapshot(self) -> int:
        return self._value


class Gauge:
    """Instantaneous value; unset gauges snapshot as None."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Optional[float] = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> float:
        with self._lock:
            self._value = (self._value or 0.0) + float(delta)
            return self._value

    @property
    def value(self) -> Optional[float]:
        return self._value

    def snapshot(self) -> Optional[float]:
        return self._value


class Histogram:
    """Running distribution: exact count/sum/min/max, recent-window quantiles."""

    def __init__(self, name: str, window: int = 2048) -> None:
        self.name = name
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._recent: deque = deque(maxlen=window)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)
            self._recent.append(value)

    @property
    def count(self) -> int:
        return self._count

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            recent = list(self._recent)
            summary: Dict[str, Any] = {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }
        # Percentiles come from the bounded recent window (the exact
        # count/sum/min/max above cover the full lifetime).
        window = latency_summary(recent)
        for key in ("p50", "p90", "p99", "mean"):
            if key in window:
                summary[key] = window[key]
        return summary


class MetricsRegistry:
    """Get-or-create registry keyed by metric name.

    Asking for an existing name with a different type raises — silent
    type shadowing would corrupt the snapshot.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(metric).__name__}, not {cls.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, window: int = 2048) -> Histogram:
        return self._get(name, Histogram, window=window)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """All metrics, grouped by type, as JSON-clean primitives."""
        with self._lock:
            items = list(self._metrics.items())
        grouped: Dict[str, Dict[str, Any]] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, metric in sorted(items):
            if isinstance(metric, Counter):
                grouped["counters"][name] = metric.snapshot()
            elif isinstance(metric, Gauge):
                grouped["gauges"][name] = metric.snapshot()
            else:
                grouped["histograms"][name] = metric.snapshot()
        return grouped

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()
