"""Typed telemetry event records and JSON-safe value sanitization.

Every signal the library streams — pruning rounds, tuning epochs, task
lifecycle changes, serving swaps — is one :class:`TelemetryEvent`: a
timestamp, a monotonically increasing per-bus sequence number, an event
name, the emitting source (dotted module-ish string), and a flat-ish dict
of fields.  Events must survive two serializations that are stricter than
"whatever repr prints":

- the per-run JSONL sink writes ``json.dumps(..., allow_nan=False)`` so a
  downstream ``jq``/``pandas`` reader never chokes on bare ``NaN`` tokens;
- the ``repro watch`` tailer folds the same lines back with ``json.loads``.

:func:`sanitize_value` therefore normalizes everything up front: numpy
scalars/arrays become Python numbers/lists, non-finite floats become the
strings ``"nan"`` / ``"inf"`` / ``"-inf"`` (lossless to grep, valid JSON),
mappings and sequences recurse with a depth cap, non-string keys are
coerced with ``str`` (unicode keys pass through untouched), and anything
else falls back to ``str(value)``.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict

__all__ = ["TelemetryEvent", "sanitize_value", "RESERVED_KEYS"]

# Keys owned by the event envelope; colliding field names get a "field_"
# prefix so a payload can never shadow the timestamp or event name.
RESERVED_KEYS = frozenset({"ts", "seq", "event", "source"})

_MAX_DEPTH = 6


def sanitize_value(value: Any, _depth: int = 0) -> Any:
    """Coerce ``value`` into something ``json.dumps(allow_nan=False)`` accepts.

    Non-finite floats become the strings ``"nan"`` / ``"inf"`` / ``"-inf"``;
    numpy scalars and arrays become native numbers and lists; mappings and
    sequences recurse (keys coerced to ``str``) down to a fixed depth, after
    which the remainder is flattened with ``str``.
    """
    if value is None or isinstance(value, (bool, str, int)):
        return value
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return value
    # numpy scalars expose .item(); arrays expose .tolist().  Checked by duck
    # typing so this module never imports numpy on the hot path.
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        try:
            return sanitize_value(value.item(), _depth)
        except (ValueError, TypeError):
            return str(value)
    if _depth >= _MAX_DEPTH:
        return str(value)
    if isinstance(value, dict):
        return {str(k): sanitize_value(v, _depth + 1) for k, v in value.items()}
    if hasattr(value, "tolist"):
        return sanitize_value(value.tolist(), _depth + 1)
    if isinstance(value, (list, tuple, set, frozenset)):
        return [sanitize_value(v, _depth + 1) for v in value]
    if isinstance(value, bytes):
        return value.decode("utf-8", errors="replace")
    return str(value)


@dataclass
class TelemetryEvent:
    """One structured telemetry record."""

    event: str
    source: str = ""
    ts: float = field(default_factory=time.time)
    seq: int = 0
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        """Flat, sanitized dict ready for ``json.dumps(allow_nan=False)``."""
        record: Dict[str, Any] = {
            "ts": round(self.ts, 4),
            "seq": self.seq,
            "event": self.event,
            "source": self.source,
        }
        for key, value in self.fields.items():
            name = str(key)
            if name in RESERVED_KEYS:
                name = f"field_{name}"
            record[name] = sanitize_value(value)
        return record
