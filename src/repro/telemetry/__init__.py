"""Structured telemetry for unlearning runs.

One process-wide :class:`TelemetryBus` fans typed events out to sinks
(JSONL files with rotation, in-memory buffers, the stdlib logger) and
in-process subscribers, and keeps counters/gauges/histograms with a
snapshot API.  The module-level :func:`emit` is the single emission path
used by the hot loops (``core.pruner``, ``core.tuner``, orchestrator,
serving); with nothing attached it reduces to one boolean check, so
instrumentation stays in place at zero practical cost (bounded by the
``BENCH_telemetry.json`` microbenchmark).

Set ``REPRO_TELEMETRY_DIR`` to make every process — including forked
orchestrator workers — lazily attach a ``telemetry-<pid>.jsonl`` sink in
that directory on first emit.  ``repro watch`` tails those files plus
the run ledger into a live dashboard (:mod:`repro.telemetry.watch`).
"""

from .bus import (
    TELEMETRY_DIR_ENV,
    TelemetryBus,
    bus,
    emit,
    release_env_sink,
    reset_bus,
    set_bus,
    telemetry_run,
)
from .events import RESERVED_KEYS, TelemetryEvent, sanitize_value
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .sinks import JsonlSink, LoggerSink, MemorySink, Sink

__all__ = [
    "TELEMETRY_DIR_ENV",
    "TelemetryBus",
    "bus",
    "emit",
    "release_env_sink",
    "reset_bus",
    "set_bus",
    "telemetry_run",
    "TelemetryEvent",
    "sanitize_value",
    "RESERVED_KEYS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Sink",
    "MemorySink",
    "JsonlSink",
    "LoggerSink",
]
