"""Telemetry sinks: where the event stream lands.

A sink is anything with ``write(event)`` and ``close()``.  The bus fans
every emitted :class:`~repro.telemetry.events.TelemetryEvent` out to all
attached sinks; a sink that raises is detached-on-error by the bus (one
broken disk must not take down the pruning loop it observes).

- :class:`JsonlSink` — one JSON object per line, size-based rotation
  (``telemetry.jsonl`` → ``telemetry.jsonl.1`` …), the durable per-run
  stream that ``repro watch`` tails.
- :class:`MemorySink` — bounded in-process ring buffer, the test/debug
  sink and the backing store for dashboards embedded in the same process.
- :class:`LoggerSink` — renders events as the classic greppable
  ``event=<name> key=value`` stderr lines through
  :func:`repro.utils.logging.log_event`, optionally filtered to an event
  allow-list so hot-loop events don't flood the console.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from collections import deque
from typing import Iterable, List, Optional

from ..utils.logging import log_event
from .events import TelemetryEvent

__all__ = ["Sink", "JsonlSink", "MemorySink", "LoggerSink"]


class Sink:
    """Interface: override :meth:`write`; :meth:`flush`/:meth:`close` are optional."""

    def write(self, event: TelemetryEvent) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class MemorySink(Sink):
    """Ring buffer of the most recent events (thread-safe)."""

    def __init__(self, capacity: int = 4096) -> None:
        self._events: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def write(self, event: TelemetryEvent) -> None:
        with self._lock:
            self._events.append(event)

    @property
    def events(self) -> List[TelemetryEvent]:
        with self._lock:
            return list(self._events)

    def named(self, event_name: str) -> List[TelemetryEvent]:
        return [e for e in self.events if e.event == event_name]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()


class JsonlSink(Sink):
    """Append JSON lines to a file, rotating when it grows past ``max_bytes``.

    Rotation shifts ``path`` → ``path.1`` → … → ``path.<backups>`` (oldest
    dropped), so a soak run is bounded at roughly
    ``max_bytes * (backups + 1)`` on disk.  Writes are line-buffered, not
    fsynced — durability for *decisions* belongs to the orchestrator's run
    ledger; this stream is observability, where throughput wins.
    """

    def __init__(
        self,
        path: str,
        max_bytes: Optional[int] = 16 * 1024 * 1024,
        backups: int = 3,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive or None, got {max_bytes}")
        if backups < 0:
            raise ValueError(f"backups must be >= 0, got {backups}")
        self.path = path
        self.max_bytes = max_bytes
        self.backups = backups
        self._lock = threading.Lock()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "a")
        self._size = self._handle.tell()

    def write(self, event: TelemetryEvent) -> None:
        line = json.dumps(event.to_json(), sort_keys=True, allow_nan=False) + "\n"
        with self._lock:
            if self._handle is None:
                return
            self._handle.write(line)
            self._size += len(line)
            if self.max_bytes is not None and self._size >= self.max_bytes:
                self._rotate_locked()

    def _rotate_locked(self) -> None:
        self._handle.flush()
        self._handle.close()
        if self.backups == 0:
            os.replace(self.path, self.path + ".old")
            os.remove(self.path + ".old")
        else:
            for index in range(self.backups, 0, -1):
                older = f"{self.path}.{index}"
                newer = self.path if index == 1 else f"{self.path}.{index - 1}"
                if os.path.exists(older) and index == self.backups:
                    os.remove(older)
                if os.path.exists(newer):
                    os.replace(newer, older)
        self._handle = open(self.path, "a")
        self._size = 0

    def flush(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                self._handle.close()
                self._handle = None


class LoggerSink(Sink):
    """Mirror (a filtered subset of) the stream as ``event=...`` log lines."""

    def __init__(
        self,
        logger: logging.Logger,
        events: Optional[Iterable[str]] = None,
        level: int = logging.INFO,
    ) -> None:
        self.logger = logger
        self.events = frozenset(events) if events is not None else None
        self.level = level

    def write(self, event: TelemetryEvent) -> None:
        if self.events is not None and event.event not in self.events:
            return
        if self.logger.isEnabledFor(self.level):
            log_event(self.logger, event.event, **event.fields)
