"""``repro watch``: live terminal dashboard over a run's event streams.

Tails the append-only files a run produces — the orchestrator's durable
``ledger.jsonl`` plus any ``telemetry*.jsonl`` written by
:class:`~repro.telemetry.sinks.JsonlSink` (one per process when workers
emit through ``REPRO_TELEMETRY_DIR``) — folds the records into a
:class:`WatchState`, and renders a compact dashboard:

- task progress (queued/running/done/failed), completion rate and ETA;
- live ASR/ACC proxies folded from finished trial results;
- the pruning hot loop: rounds, unlearning-loss sparkline, clean-accuracy
  trajectory, per-layer prune counts, stop policy state;
- recovery-tuning epochs and serving swaps when those events appear.

Everything here is pure fold-and-render over dicts: :class:`JsonlTail`
turns growing files into record streams (tolerating partial trailing
lines and rotation), ``WatchState.apply`` folds one record, and
:func:`render_dashboard` produces a frame string.  The CLI loop just
clears the screen and reprints — no curses dependency, works over ssh,
and ``--once`` makes it scriptable and testable.
"""

from __future__ import annotations

import glob
import json
import os
import time
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional

__all__ = [
    "JsonlTail",
    "WatchState",
    "sparkline",
    "render_dashboard",
    "discover_streams",
    "watch_paths",
]

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"

# Ledger events that change a task's folded status (mirrors RunLedger).
_TASK_STATUS = {
    "queued": "queued",
    "started": "running",
    "finished": "done",
    "failed": "failed",
    "retried": "queued",
    "skipped": "skipped",
}


class JsonlTail:
    """Incremental reader of one growing JSONL file.

    ``poll()`` returns the records appended since the previous call.  A
    partial trailing line (a writer mid-append) is buffered until its
    newline arrives; unparsable complete lines are skipped; a file that
    shrank (rotation) is re-read from the start.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._offset = 0
        self._buffer = b""

    def poll(self) -> List[Dict[str, Any]]:
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return []
        if size < self._offset:  # rotated/truncated underneath us
            self._offset = 0
            self._buffer = b""
        if size == self._offset:
            return []
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            chunk = handle.read()
            self._offset = handle.tell()
        data = self._buffer + chunk
        lines = data.split(b"\n")
        self._buffer = lines.pop()  # b"" when the chunk ended on a newline
        records: List[Dict[str, Any]] = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except (json.JSONDecodeError, UnicodeDecodeError):
                continue
            if isinstance(record, dict):
                records.append(record)
        return records


def discover_streams(target: str) -> List[str]:
    """Stream files for a watch target (a run dir, or one JSONL file)."""
    if os.path.isfile(target):
        return [target]
    paths = []
    for pattern in ("ledger.jsonl", "telemetry*.jsonl"):
        paths.extend(glob.glob(os.path.join(target, pattern)))
    return sorted(set(paths))


@dataclass
class _TaskFold:
    status: str = "queued"
    kind: str = ""
    started_at: Optional[float] = None
    elapsed: float = 0.0


@dataclass
class WatchState:
    """Folded view of a run's event streams (ledger + telemetry)."""

    run_meta: Dict[str, Any] = field(default_factory=dict)
    tasks: Dict[str, _TaskFold] = field(default_factory=dict)
    completions: List[float] = field(default_factory=list)  # (ts) of finishes
    trial_metrics: List[Dict[str, float]] = field(default_factory=list)
    retries: int = 0
    # Pruning hot loop (latest prune run wins the headline).
    prune_rounds: int = 0
    prune_losses: deque = field(default_factory=lambda: deque(maxlen=120))
    prune_accs: deque = field(default_factory=lambda: deque(maxlen=120))
    per_layer: Counter = field(default_factory=Counter)
    num_pruned: int = 0
    prune_policy: str = ""
    prune_stop_reason: str = ""
    # Recovery tuning.
    tune_epochs: int = 0
    tune_val_loss: Optional[float] = None
    tune_best_epoch: int = -1
    # Federated rounds (latest round event per scenario wins the headline).
    fed_rounds: int = 0
    fed_total_rounds: int = 0
    fed_clients: int = 0
    fed_asrs: deque = field(default_factory=lambda: deque(maxlen=120))
    fed_accs: deque = field(default_factory=lambda: deque(maxlen=120))
    fed_agg_norm: Optional[float] = None
    # Defense arm -> latest (asr, acc) from federated.defense events.
    fed_defenses: Dict[str, Dict[str, float]] = field(default_factory=dict)
    # Serving.
    swaps: int = 0
    overloads: int = 0
    # Bookkeeping.
    events: int = 0
    last_event_ts: Optional[float] = None
    recent: deque = field(default_factory=lambda: deque(maxlen=8))

    # ------------------------------------------------------------------
    def apply(self, record: Dict[str, Any]) -> None:
        event = record.get("event")
        if not isinstance(event, str):
            return
        self.events += 1
        ts = record.get("ts")
        if isinstance(ts, (int, float)):
            self.last_event_ts = max(self.last_event_ts or 0.0, float(ts))

        if event == "run_meta":
            self.run_meta = record
        elif event in _TASK_STATUS and record.get("task"):
            self._apply_task(event, record)
        elif event == "prune_started":
            # A new pruning run resets the hot-loop view.
            self.prune_rounds = 0
            self.prune_losses.clear()
            self.prune_accs.clear()
            self.per_layer.clear()
            self.num_pruned = 0
            self.prune_stop_reason = ""
            self.prune_policy = str(record.get("policy", ""))
        elif event == "prune_round":
            self.prune_rounds += 1
            if isinstance(record.get("val_loss"), (int, float)):
                self.prune_losses.append(float(record["val_loss"]))
            if isinstance(record.get("val_acc"), (int, float)):
                self.prune_accs.append(float(record["val_acc"]))
            if record.get("layer") and not record.get("rolled_back"):
                self.per_layer[str(record["layer"])] += 1
            if isinstance(record.get("num_pruned"), int):
                self.num_pruned = record["num_pruned"]
        elif event == "prune_finished":
            self.prune_stop_reason = str(record.get("stop_reason", ""))
        elif event == "tune_epoch":
            self.tune_epochs += 1
            if isinstance(record.get("val_loss"), (int, float)):
                self.tune_val_loss = float(record["val_loss"])
            if isinstance(record.get("best_epoch"), int):
                self.tune_best_epoch = record["best_epoch"]
        elif event == "federated.round":
            if isinstance(record.get("round"), int):
                self.fed_rounds = record["round"] + 1
            if isinstance(record.get("rounds"), int):
                self.fed_total_rounds = record["rounds"]
            if isinstance(record.get("clients"), int):
                self.fed_clients = record["clients"]
            if isinstance(record.get("asr"), (int, float)):
                self.fed_asrs.append(float(record["asr"]))
            if isinstance(record.get("acc"), (int, float)):
                self.fed_accs.append(float(record["acc"]))
            if isinstance(record.get("agg_norm"), (int, float)):
                self.fed_agg_norm = float(record["agg_norm"])
        elif event == "federated.defense":
            name = record.get("defense")
            if name:
                self.fed_defenses[str(name)] = {
                    "asr": float(record.get("asr", float("nan"))),
                    "acc": float(record.get("acc", float("nan"))),
                }
        elif event == "swap":
            self.swaps += 1
        elif event == "overload_rejected":
            self.overloads += 1

        if event not in ("prune_round", "tune_epoch", "federated.round"):
            summary = event
            task = record.get("task")
            if task:
                summary += f" {task}"
            self.recent.append(summary[:100])

    def _apply_task(self, event: str, record: Dict[str, Any]) -> None:
        task = self.tasks.setdefault(str(record["task"]), _TaskFold())
        previous = task.status
        task.status = _TASK_STATUS[event]
        if record.get("kind"):
            task.kind = str(record["kind"])
        if event == "retried":
            self.retries += 1
        if event == "finished":
            if isinstance(record.get("elapsed"), (int, float)):
                task.elapsed = float(record["elapsed"])
            ts = record.get("ts")
            if previous != "done" and isinstance(ts, (int, float)):
                self.completions.append(float(ts))
            result = record.get("result") or {}
            metrics = result.get("metrics") if isinstance(result, dict) else None
            if isinstance(metrics, dict) and "asr" in metrics:
                self.trial_metrics.append(metrics)

    # ------------------------------------------------------------------
    def task_counts(self) -> Dict[str, int]:
        counts: Counter = Counter(t.status for t in self.tasks.values())
        return dict(counts)

    def eta_seconds(self, now: Optional[float] = None) -> Optional[float]:
        """Remaining-work estimate from the recent completion rate."""
        counts = self.task_counts()
        done = counts.get("done", 0)
        total = len(self.tasks)
        remaining = total - done - counts.get("failed", 0) - counts.get("skipped", 0)
        if remaining <= 0 or done < 2:
            return None
        window = self.completions[-20:]
        span = (window[-1] - window[0]) if len(window) >= 2 else 0.0
        if span <= 0:
            return None
        rate = (len(window) - 1) / span  # tasks per second
        return remaining / rate


def sparkline(values: Iterable[float], width: int = 32) -> str:
    """Render a numeric series as unicode block characters."""
    series = [float(v) for v in values]
    if not series:
        return ""
    if len(series) > width:
        series = series[-width:]
    lo, hi = min(series), max(series)
    span = hi - lo
    if span <= 0:
        return _SPARK_BLOCKS[0] * len(series)
    return "".join(
        _SPARK_BLOCKS[int((v - lo) / span * (len(_SPARK_BLOCKS) - 1))] for v in series
    )


def _bar(done: int, total: int, width: int = 30) -> str:
    if total <= 0:
        return "·" * width
    filled = int(round(width * done / total))
    return "█" * filled + "·" * (width - filled)


def _fmt_eta(seconds: Optional[float]) -> str:
    if seconds is None:
        return "--"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


def render_dashboard(state: WatchState, width: int = 78, now: Optional[float] = None) -> str:
    """One dashboard frame as a plain string (no cursor control)."""
    now = now if now is not None else time.time()
    lines: List[str] = []
    rule = "─" * width

    meta = state.run_meta
    title = meta.get("experiment", "run") if meta else "run"
    header = f" repro watch · {title}"
    if meta.get("grid"):
        header += f" · grid {str(meta['grid'])[:10]}"
    if meta.get("workers") is not None:
        header += f" · workers={meta['workers']}"
    lines.append(header)
    lines.append(rule)

    # Tasks --------------------------------------------------------------
    if state.tasks:
        counts = state.task_counts()
        done = counts.get("done", 0)
        total = len(state.tasks)
        lines.append(
            f" tasks   [{_bar(done, total)}] {done}/{total}"
            f"  running={counts.get('running', 0)} failed={counts.get('failed', 0)}"
            f" retries={state.retries}  eta {_fmt_eta(state.eta_seconds(now))}"
        )

    # Defense proxies ----------------------------------------------------
    if state.trial_metrics:
        recent = state.trial_metrics[-32:]
        asr = sum(m.get("asr", 0.0) for m in recent) / len(recent)
        acc = sum(m.get("acc", 0.0) for m in recent) / len(recent)
        lines.append(
            f" trials  n={len(state.trial_metrics)}  ASR≈{asr * 100:5.1f}%"
            f"  ACC≈{acc * 100:5.1f}%  (mean of last {len(recent)})"
        )

    # Pruning hot loop ---------------------------------------------------
    if state.prune_rounds:
        loss_now = state.prune_losses[-1] if state.prune_losses else float("nan")
        acc_now = state.prune_accs[-1] if state.prune_accs else float("nan")
        policy = f" policy={state.prune_policy}" if state.prune_policy else ""
        lines.append(
            f" prune   round {state.prune_rounds}  pruned={state.num_pruned}"
            f"  loss {loss_now:.3f}  acc {acc_now * 100:5.1f}%{policy}"
        )
        if state.prune_losses:
            lines.append(f"   loss  {sparkline(state.prune_losses, width - 10)}")
        if state.prune_accs:
            lines.append(f"   acc   {sparkline(state.prune_accs, width - 10)}")
        if state.per_layer:
            top = state.per_layer.most_common(3)
            layers = "  ".join(f"{layer}:{count}" for layer, count in top)
            lines.append(f"   layers {layers}")
        if state.prune_stop_reason:
            lines.append(f"   stop: {state.prune_stop_reason}"[:width])

    # Recovery tuning ----------------------------------------------------
    if state.tune_epochs:
        val = f"{state.tune_val_loss:.4f}" if state.tune_val_loss is not None else "--"
        lines.append(
            f" tune    epoch {state.tune_epochs}  val_loss {val}"
            f"  best_epoch {state.tune_best_epoch}"
        )

    # Federated rounds ---------------------------------------------------
    if state.fed_rounds:
        asr_now = state.fed_asrs[-1] if state.fed_asrs else float("nan")
        acc_now = state.fed_accs[-1] if state.fed_accs else float("nan")
        total = f"/{state.fed_total_rounds}" if state.fed_total_rounds else ""
        norm = f"  |Δw| {state.fed_agg_norm:.3f}" if state.fed_agg_norm is not None else ""
        lines.append(
            f" fed     round {state.fed_rounds}{total}  clients={state.fed_clients}"
            f"  ASR {asr_now * 100:5.1f}%  ACC {acc_now * 100:5.1f}%{norm}"
        )
        if state.fed_asrs:
            lines.append(f"   asr   {sparkline(state.fed_asrs, width - 10)}")
        if state.fed_defenses:
            arms = "  ".join(
                f"{name}:ASR {vals['asr'] * 100:.1f}%"
                for name, vals in sorted(state.fed_defenses.items())
            )
            lines.append(f"   defenses {arms}"[:width])

    # Serving ------------------------------------------------------------
    if state.swaps or state.overloads:
        lines.append(f" serving swaps={state.swaps} overload_rejected={state.overloads}")

    # Footer -------------------------------------------------------------
    lines.append(rule)
    stale = f"{now - state.last_event_ts:.0f}s ago" if state.last_event_ts else "never"
    lines.append(f" events={state.events}  last event: {stale}")
    for entry in list(state.recent)[-4:]:
        lines.append(f"   · {entry}")
    return "\n".join(line[:width] for line in lines)


def watch_paths(
    target: str,
    interval: float = 1.0,
    once: bool = False,
    duration: Optional[float] = None,
    width: int = 78,
    out=None,
) -> WatchState:
    """Tail ``target`` (run dir or file) and render frames until stopped.

    ``once`` renders a single frame from the current file contents;
    ``duration`` bounds the loop (tests / unattended use).  Returns the
    final state so callers can assert on it.
    """
    import sys

    out = out if out is not None else sys.stdout
    state = WatchState()
    tails: Dict[str, JsonlTail] = {}
    started = time.monotonic()
    clear = "\x1b[2J\x1b[H"
    while True:
        for path in discover_streams(target):
            tail = tails.get(path)
            if tail is None:
                tail = tails[path] = JsonlTail(path)
            for record in tail.poll():
                state.apply(record)
        frame = render_dashboard(state, width=width)
        if once:
            out.write(frame + "\n")
            return state
        out.write(clear + frame + "\n")
        out.flush()
        if duration is not None and time.monotonic() - started >= duration:
            return state
        try:
            time.sleep(interval)
        except KeyboardInterrupt:
            return state
