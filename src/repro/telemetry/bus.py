"""The in-process telemetry event bus.

One :class:`TelemetryBus` per process fans typed events out to attached
sinks (JSONL files, ring buffers, loggers) and in-process subscribers
(callables), and owns the process's
:class:`~repro.telemetry.metrics.MetricsRegistry`.  Instrumented code
calls :func:`emit` unconditionally; when nothing is attached the call is a
single attribute check and an immediate return, which is what keeps the
instrumented pruning round within the <5% overhead budget recorded in
``BENCH_telemetry.json`` even with telemetry compiled into every hot loop.

Process-global wiring
---------------------

``bus()`` returns the process-wide default bus.  Two ways to light it up:

- :func:`telemetry_run` — context manager that attaches a rotating
  :class:`~repro.telemetry.sinks.JsonlSink` under a run directory for the
  duration of a run (what ``repro orchestrate`` / ``repro defend`` use);
- the ``REPRO_TELEMETRY_DIR`` environment variable — when set, the default
  bus lazily attaches ``<dir>/telemetry-<pid>.jsonl`` on first use.  The
  orchestrator exports it for the run directory before spawning workers,
  so events emitted *inside worker processes* (per-round pruning signals)
  land in per-pid files next to the run ledger, where ``repro watch``
  picks them all up.

Subscriber or sink exceptions never propagate into the instrumented code:
they increment the ``telemetry.dropped`` counter, the offender is detached
after repeated failures, and the emit returns normally.
"""

from __future__ import annotations

import contextlib
import os
import threading
from typing import Callable, Iterator, List, Optional

from ..utils.logging import get_logger
from .events import TelemetryEvent
from .metrics import MetricsRegistry
from .sinks import JsonlSink, Sink

__all__ = [
    "TelemetryBus",
    "bus",
    "set_bus",
    "reset_bus",
    "release_env_sink",
    "emit",
    "telemetry_run",
    "TELEMETRY_DIR_ENV",
]

_LOG = get_logger("repro.telemetry")

TELEMETRY_DIR_ENV = "REPRO_TELEMETRY_DIR"

# A sink/subscriber is detached after this many consecutive failures.
_MAX_FAILURES = 3

Subscriber = Callable[[TelemetryEvent], None]


class TelemetryBus:
    """Thread-safe publish/subscribe hub with attached sinks and metrics."""

    def __init__(self) -> None:
        self.metrics = MetricsRegistry()
        self._sinks: List[Sink] = []
        self._subscribers: List[Subscriber] = []
        self._failures: dict = {}
        self._lock = threading.Lock()
        self._seq = 0
        # Fast-path flag: emit() bails immediately while nothing listens.
        self._active = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """True when at least one sink or subscriber is attached."""
        return self._active

    def _refresh_active(self) -> None:
        self._active = bool(self._sinks or self._subscribers)

    def attach(self, sink: Sink) -> Sink:
        """Attach a sink; returns it (for later :meth:`detach`)."""
        with self._lock:
            if sink not in self._sinks:
                self._sinks.append(sink)
            self._refresh_active()
        return sink

    def detach(self, sink: Sink, close: bool = False) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)
            self._failures.pop(id(sink), None)
            self._refresh_active()
        if close:
            sink.close()

    def flush(self) -> None:
        """Flush every attached sink's buffered output to durable storage.

        Pool workers exit through ``os._exit`` (multiprocessing bootstrap),
        which skips interpreter shutdown — anything still sitting in a
        sink's userspace buffer is lost.  Workers call this after each task
        so live watchers see their events promptly.
        """
        with self._lock:
            sinks = list(self._sinks)
        for sink in sinks:
            try:
                sink.flush()
            except Exception:  # noqa: BLE001 — observability must not kill work
                pass

    def subscribe(self, fn: Subscriber) -> Subscriber:
        """Register an in-process callback; returns it (for unsubscribe)."""
        with self._lock:
            if fn not in self._subscribers:
                self._subscribers.append(fn)
            self._refresh_active()
        return fn

    def unsubscribe(self, fn: Subscriber) -> None:
        with self._lock:
            if fn in self._subscribers:
                self._subscribers.remove(fn)
            self._failures.pop(id(fn), None)
            self._refresh_active()

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, event: str, source: str = "", **fields) -> Optional[TelemetryEvent]:
        """Publish one event; returns it, or None on the disabled fast path."""
        if not self._active:
            return None
        with self._lock:
            self._seq += 1
            record = TelemetryEvent(event=event, source=source, seq=self._seq, fields=fields)
            sinks = list(self._sinks)
            subscribers = list(self._subscribers)
        for target in sinks:
            self._deliver(target, record, is_sink=True)
        for target in subscribers:
            self._deliver(target, record, is_sink=False)
        return record

    def _deliver(self, target, record: TelemetryEvent, is_sink: bool) -> None:
        try:
            if is_sink:
                target.write(record)
            else:
                target(record)
            self._failures.pop(id(target), None)
        except Exception as exc:  # noqa: BLE001 — observers must not kill the loop
            self.metrics.counter("telemetry.dropped").inc()
            failures = self._failures.get(id(target), 0) + 1
            self._failures[id(target)] = failures
            _LOG.warning(
                "telemetry %s failed on %s (%d/%d): %s",
                "sink" if is_sink else "subscriber",
                record.event, failures, _MAX_FAILURES, exc,
            )
            if failures >= _MAX_FAILURES:
                if is_sink:
                    self.detach(target)
                else:
                    self.unsubscribe(target)
                _LOG.warning("detached failing telemetry %s", "sink" if is_sink else "subscriber")

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Metrics snapshot plus bus wiring facts (JSON-clean)."""
        payload = self.metrics.snapshot()
        payload["bus"] = {
            "events_emitted": self._seq,
            "sinks": len(self._sinks),
            "subscribers": len(self._subscribers),
        }
        return payload

    def close(self) -> None:
        """Detach and close every sink, drop subscribers, keep metrics."""
        with self._lock:
            sinks, self._sinks = self._sinks, []
            self._subscribers = []
            self._failures.clear()
            self._refresh_active()
        for sink in sinks:
            try:
                sink.close()
            except Exception:  # noqa: BLE001 — best-effort teardown
                pass


# ----------------------------------------------------------------------
# Process-global default bus
# ----------------------------------------------------------------------
_BUS = TelemetryBus()
_ENV_SINK_CHECKED = False
_ENV_SINK: Optional[JsonlSink] = None
_ENV_LOCK = threading.Lock()


def _ensure_env_sink() -> None:
    """Attach the ``REPRO_TELEMETRY_DIR`` JSONL sink once per process."""
    global _ENV_SINK_CHECKED, _ENV_SINK
    if _ENV_SINK_CHECKED:
        return
    with _ENV_LOCK:
        if _ENV_SINK_CHECKED:
            return
        _ENV_SINK_CHECKED = True
        directory = os.environ.get(TELEMETRY_DIR_ENV, "").strip()
        if not directory:
            return
        try:
            _ENV_SINK = JsonlSink(os.path.join(directory, f"telemetry-{os.getpid()}.jsonl"))
        except OSError as exc:
            _LOG.warning("cannot open telemetry sink under %s: %s", directory, exc)
            return
        _BUS.attach(_ENV_SINK)


def release_env_sink() -> None:
    """Detach/close the env-attached sink and re-arm the check.

    Called by run owners (e.g. the orchestrator) that exported
    ``REPRO_TELEMETRY_DIR`` for one run, so a later run in the same
    process binds a fresh sink to its own directory.
    """
    global _ENV_SINK_CHECKED, _ENV_SINK
    with _ENV_LOCK:
        sink, _ENV_SINK = _ENV_SINK, None
        _ENV_SINK_CHECKED = False
    if sink is not None:
        _BUS.detach(sink, close=True)


def _fork_reset() -> None:
    """Give a forked child a pristine bus.

    The child must not inherit the parent's sinks: a JSONL sink's file
    handle and userspace buffer are duplicated by fork, and a child-side
    flush/close would interleave (or replay) the parent's buffered lines.
    The inherited bus is abandoned, not closed, and the env-sink check is
    re-armed so the child attaches its own ``telemetry-<pid>.jsonl`` when
    ``REPRO_TELEMETRY_DIR`` is exported — this is how orchestrator worker
    processes get per-pid telemetry files.
    """
    global _BUS, _ENV_SINK_CHECKED, _ENV_SINK
    _BUS = TelemetryBus()
    _ENV_SINK_CHECKED = False
    _ENV_SINK = None


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_fork_reset)


def bus() -> TelemetryBus:
    """The process-wide default bus (env sink attached lazily)."""
    _ensure_env_sink()
    return _BUS


def set_bus(new_bus: TelemetryBus) -> TelemetryBus:
    """Swap the default bus (tests); returns the previous one."""
    global _BUS
    previous, _BUS = _BUS, new_bus
    return previous


def reset_bus() -> None:
    """Fresh default bus; re-arms the env-sink check (tests, fork hooks)."""
    global _BUS, _ENV_SINK_CHECKED, _ENV_SINK
    _BUS.close()
    _BUS = TelemetryBus()
    _ENV_SINK_CHECKED = False
    _ENV_SINK = None


def emit(event: str, source: str = "", **fields) -> Optional[TelemetryEvent]:
    """Module-level convenience for ``bus().emit(...)``.

    The disabled path costs one global read plus the in-method active
    check — cheap enough to leave in every hot loop unconditionally.
    """
    if not _ENV_SINK_CHECKED:
        _ensure_env_sink()
    return _BUS.emit(event, source, **fields)


@contextlib.contextmanager
def telemetry_run(
    run_dir: str,
    filename: str = "telemetry.jsonl",
    max_bytes: Optional[int] = 16 * 1024 * 1024,
    backups: int = 3,
    target: Optional[TelemetryBus] = None,
) -> Iterator[JsonlSink]:
    """Attach a rotating per-run JSONL sink for the duration of a block."""
    owner = target if target is not None else bus()
    sink = JsonlSink(os.path.join(run_dir, filename), max_bytes=max_bytes, backups=backups)
    owner.attach(sink)
    try:
        yield sink
    finally:
        owner.detach(sink, close=True)
