"""Filter scoring from unlearning-loss gradients (paper Eq. 3).

For every 2-D convolutional filter ``i`` at layer ``l`` with parameters
``θ'_{l,i}`` the score is the mean absolute gradient

    ξ_{l,i} = ||∇θ'_{l,i}||₁ / numel(θ'_{l,i})

computed after :func:`repro.core.unlearning.unlearning_loss_backward` has
populated ``.grad``.  Higher ξ means the filter contributes more to the
misclassification of triggered inputs, making it the next pruning candidate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from ..data.dataset import ImageDataset
from ..models.pruning_utils import FilterRef, iter_conv_layers
from ..nn.module import Module
from .unlearning import unlearning_loss_backward

__all__ = ["filter_scores_from_grads", "compute_filter_scores", "top_filter"]


def filter_scores_from_grads(
    model: Module, exclude: Optional[Set[FilterRef]] = None
) -> Dict[FilterRef, float]:
    """Read Eq. 3 scores from gradients already stored on the model.

    Parameters
    ----------
    model:
        Model whose conv weights carry ``.grad`` from the unlearning loss.
    exclude:
        Filters to skip (already-pruned filters: their weights are zero, and
        re-pruning them wastes rounds).
    """
    exclude = exclude or set()
    scores: Dict[FilterRef, float] = {}
    for layer_name, conv in iter_conv_layers(model):
        grad = conv.weight.grad
        if grad is None:
            continue
        # |grad| averaged per filter; include the bias entry when present.
        abs_sum = np.abs(grad).reshape(grad.shape[0], -1).sum(axis=1)
        numel = np.full(grad.shape[0], grad[0].size, dtype=np.float64)
        if conv.bias is not None and conv.bias.grad is not None:
            abs_sum = abs_sum + np.abs(conv.bias.grad)
            numel += 1
        xi = abs_sum / numel
        for index in range(conv.out_channels):
            ref = FilterRef(layer_name, index)
            if ref not in exclude:
                scores[ref] = float(xi[index])
    return scores


def compute_filter_scores(
    model: Module,
    backdoor_train: ImageDataset,
    exclude: Optional[Set[FilterRef]] = None,
    batch_size: int = 128,
) -> Tuple[Dict[FilterRef, float], float]:
    """Run the unlearning loss backward and score every filter.

    Returns ``(scores, loss_value)``.  The loss value is on the *training*
    backdoor data; the pruning loop's stopping rule uses a separate
    validation evaluation.
    """
    loss_value = unlearning_loss_backward(model, backdoor_train, batch_size=batch_size)
    scores = filter_scores_from_grads(model, exclude=exclude)
    # Zero in place: the .grad arrays survive to the next pruning round, so
    # every round after the first accumulates into recycled buffers instead
    # of dropping and re-faulting a model's worth of gradient memory.
    model.zero_grad(set_to_none=False)
    return scores, loss_value


def top_filter(scores: Dict[FilterRef, float]) -> FilterRef:
    """The filter with the highest ξ (deterministic tie-break by name/index)."""
    if not scores:
        raise ValueError("no prunable filters remain")
    return max(scores.items(), key=lambda kv: (kv[1], kv[0].layer, kv[0].index))[0]
