"""Post-pruning fine-tuning (paper §IV-C).

Fine-tunes the pruned model on *all* available data — clean samples plus the
synthesized backdoor samples relabeled with their correct classes — until the
validation loss fails to improve for ``P_t`` consecutive epochs.  Unlike
Neural Cleanse's fine-tuning, no portioning of the backdoor data is done.
The best-so-far parameters (by validation loss) are restored at the end, and
pruned filters are re-masked after every optimizer step so the prune holds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..data.dataset import DataLoader, ImageDataset
from ..models.pruning_utils import PruningMask
from ..nn import SGD, Tensor, cross_entropy, no_grad
from ..nn.engine.training import training_step
from ..nn.module import Module
from ..telemetry import bus, emit

__all__ = ["FineTuneHistory", "FineTuner"]

_SOURCE = "core.tuner"


@dataclass
class FineTuneHistory:
    """Per-epoch train/validation losses of a fine-tuning run."""

    train_losses: List[float] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)
    best_epoch: int = -1
    stop_reason: str = ""


def _dataset_loss(model: Module, dataset: ImageDataset, batch_size: int) -> float:
    """Mean cross-entropy of ``model`` on ``dataset`` (eval mode, no grad)."""
    model.eval()
    total, count = 0.0, 0
    with no_grad():
        for start in range(0, len(dataset), batch_size):
            images = dataset.images[start : start + batch_size]
            labels = dataset.labels[start : start + batch_size]
            loss = cross_entropy(model(Tensor(images)), labels, reduction="sum")
            total += loss.item()
            count += len(labels)
    return total / max(count, 1)


class FineTuner:
    """Early-stopped fine-tuning on clean + relabeled backdoor data.

    Parameters
    ----------
    lr, momentum, weight_decay:
        SGD hyperparameters (lower LR than training from scratch).
    patience:
        The paper's ``P_t``: epochs without validation-loss improvement
        before stopping.
    max_epochs:
        Hard cap on fine-tuning epochs.
    batch_size:
        Minibatch size.
    seed:
        Shuffling seed.
    """

    def __init__(
        self,
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 5e-4,
        patience: int = 5,
        max_epochs: int = 50,
        batch_size: int = 32,
        seed: int = 0,
    ) -> None:
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if max_epochs < 1:
            raise ValueError(f"max_epochs must be >= 1, got {max_epochs}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.patience = patience
        self.max_epochs = max_epochs
        self.batch_size = batch_size
        self.seed = seed

    def tune(
        self,
        model: Module,
        clean_train: ImageDataset,
        clean_val: ImageDataset,
        backdoor_train: Optional[ImageDataset] = None,
        backdoor_val: Optional[ImageDataset] = None,
        mask: Optional[PruningMask] = None,
    ) -> FineTuneHistory:
        """Fine-tune in place; returns the loss history.

        ``backdoor_train`` / ``backdoor_val`` must carry *correct* labels
        (:meth:`DefenderData.backdoor_train` provides exactly that).  When
        omitted, this degrades to plain clean-data fine-tuning — which is
        also how the FT baseline reuses this class.
        """
        train_set = clean_train
        if backdoor_train is not None and len(backdoor_train):
            train_set = clean_train.concat(backdoor_train)
        val_set = clean_val
        if backdoor_val is not None and len(backdoor_val):
            val_set = clean_val.concat(backdoor_val)

        optimizer = SGD(
            model.parameters(),
            lr=self.lr,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
        )
        loader = DataLoader(
            train_set,
            batch_size=min(self.batch_size, max(1, len(train_set))),
            shuffle=True,
            rng=np.random.default_rng(self.seed),
        )
        history = FineTuneHistory()
        best_val = _dataset_loss(model, val_set, self.batch_size * 4)
        best_state: Dict[str, np.ndarray] = model.state_dict()
        epochs_since_improvement = 0
        emit(
            "tune_started", _SOURCE,
            train_size=len(train_set), val_size=len(val_set),
            lr=self.lr, patience=self.patience, max_epochs=self.max_epochs,
            initial_val_loss=best_val,
        )

        for epoch in range(self.max_epochs):
            model.train()
            epoch_loss, batches, samples = 0.0, 0, 0
            epoch_started = time.perf_counter()
            for images, labels in loader:
                with training_step((images.shape, images.dtype.str)):
                    loss = cross_entropy(model(Tensor(images)), labels)
                    optimizer.zero_grad(set_to_none=False)
                    loss.backward()
                optimizer.step()
                if mask is not None:
                    mask.apply()
                epoch_loss += loss.item()
                batches += 1
                samples += len(labels)
            elapsed = time.perf_counter() - epoch_started
            if elapsed > 0 and samples:
                bus().metrics.gauge("training.samples_per_sec").set(samples / elapsed)
            history.train_losses.append(epoch_loss / max(batches, 1))

            val_loss = _dataset_loss(model, val_set, self.batch_size * 4)
            history.val_losses.append(val_loss)
            if val_loss < best_val:
                best_val = val_loss
                best_state = model.state_dict()
                history.best_epoch = epoch
                epochs_since_improvement = 0
            else:
                epochs_since_improvement += 1
            emit(
                "tune_epoch", _SOURCE,
                epoch=epoch, train_loss=history.train_losses[-1], val_loss=val_loss,
                best_val_loss=best_val, best_epoch=history.best_epoch,
                since_improvement=epochs_since_improvement,
            )
            if epochs_since_improvement >= self.patience:
                history.stop_reason = (
                    f"validation loss did not improve for {self.patience} epochs"
                )
                break
        if not history.stop_reason:
            history.stop_reason = f"reached max_epochs={self.max_epochs}"

        model.load_state_dict(best_state)
        if mask is not None:
            mask.apply()
        model.eval()
        emit(
            "tune_finished", _SOURCE,
            epochs=len(history.train_losses), best_epoch=history.best_epoch,
            best_val_loss=best_val, stop_reason=history.stop_reason,
        )
        return history
