"""Pruning-loop stopping policies: fixed patience and the adaptive rule.

The paper stops pruning after ``P_p`` consecutive rounds without a new
best validation unlearning loss.  :class:`PatienceStopping` reproduces
that rule exactly.  :class:`AdaptiveStopping` replaces the fixed constant
with decisions driven by the same per-round signals the telemetry
subsystem streams (DESIGN.md §12):

- **plateau detection** — the best-so-far validation unlearning loss must
  improve by at least ``rel_improvement`` (relative) over any sliding
  window of ``window`` rounds, else the loss trajectory has flattened and
  further prunes only spend clean accuracy;
- **score-mass exhaustion** — Eq. 3 scores measure how much each filter
  still contributes to misclassifying triggered inputs.  When the best
  remaining score decays below ``score_floor`` × the first round's best
  score, the gradient signal that justifies pruning is spent.

Because a window of ``window`` rounds with *zero* improvement always
triggers the plateau test, adaptive stopping with ``window <= P_p`` never
runs more rounds than patience-``P_p`` stopping on the same trajectory —
the property the ``ablation_stopping_adaptive`` benchmark checks.

Policies are stateful and single-use per pruning run: the pruner calls
:meth:`reset` with the initial validation loss, then :meth:`update` once
per round with a :class:`RoundSignals`; a non-None return is the stop
reason.  The accuracy floor ``alpha`` (and its rollback) stays in the
pruner — it is a safety constraint, not a stopping heuristic.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Optional

__all__ = [
    "RoundSignals",
    "StoppingPolicy",
    "PatienceStopping",
    "AdaptiveStopping",
    "STOPPING_POLICIES",
    "make_stopping",
]


@dataclass
class RoundSignals:
    """Per-round observables a stopping policy may consult.

    The same numbers are emitted on the telemetry bus as ``prune_round``
    events, so a policy decision is always reconstructible from the
    stream.
    """

    round_index: int
    val_loss: float
    val_accuracy: float
    top_score: float = float("nan")
    score_mass: float = float("nan")  # sum of all remaining Eq. 3 scores
    num_pruned: int = 0


class StoppingPolicy:
    """Interface for pruning stop decisions."""

    name = "base"

    def reset(self, initial_loss: float) -> None:
        raise NotImplementedError

    def update(self, signals: RoundSignals) -> Optional[str]:
        """Consume one round; return a stop reason, or None to continue."""
        raise NotImplementedError

    def state(self) -> Dict[str, Any]:
        """Small JSON-clean dict describing internal state (telemetry)."""
        return {}


class PatienceStopping(StoppingPolicy):
    """The paper's fixed rule: stop after ``patience`` rounds w/o a new best."""

    name = "patience"

    def __init__(self, patience: int = 10) -> None:
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.patience = patience
        self._best = float("inf")
        self._since_improvement = 0

    def reset(self, initial_loss: float) -> None:
        self._best = initial_loss
        self._since_improvement = 0

    def update(self, signals: RoundSignals) -> Optional[str]:
        if signals.val_loss < self._best:
            self._best = signals.val_loss
            self._since_improvement = 0
            return None
        self._since_improvement += 1
        if self._since_improvement >= self.patience:
            return f"unlearning loss did not improve for {self.patience} rounds"
        return None

    def state(self) -> Dict[str, Any]:
        return {"best_loss": self._best, "since_improvement": self._since_improvement}


class AdaptiveStopping(StoppingPolicy):
    """Plateau + score-mass stopping over the streamed round signals.

    Parameters
    ----------
    window:
        Sliding-window length (rounds) for the plateau test.  Choosing
        ``window <= P_p`` guarantees no more rounds than the fixed rule.
    rel_improvement:
        Minimum relative improvement of the best loss across the window;
        below it the trajectory counts as plateaued.
    score_floor:
        Stop when the round's best Eq. 3 score falls below this fraction
        of the first round's best score (NaN scores are ignored).
    min_rounds:
        Grace period before any adaptive stop can fire.
    """

    name = "adaptive"

    def __init__(
        self,
        window: int = 5,
        rel_improvement: float = 1e-3,
        score_floor: float = 0.05,
        min_rounds: int = 2,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if rel_improvement < 0:
            raise ValueError(f"rel_improvement must be >= 0, got {rel_improvement}")
        if not 0.0 <= score_floor < 1.0:
            raise ValueError(f"score_floor must be in [0, 1), got {score_floor}")
        if min_rounds < 0:
            raise ValueError(f"min_rounds must be >= 0, got {min_rounds}")
        self.window = window
        self.rel_improvement = rel_improvement
        self.score_floor = score_floor
        self.min_rounds = min_rounds
        self._best = float("inf")
        # Best-so-far loss *before* each of the last `window` rounds.
        self._best_history: deque = deque(maxlen=window)
        self._initial_top_score = float("nan")
        self._rounds = 0

    def reset(self, initial_loss: float) -> None:
        self._best = initial_loss
        self._best_history.clear()
        self._initial_top_score = float("nan")
        self._rounds = 0

    def update(self, signals: RoundSignals) -> Optional[str]:
        self._rounds += 1
        window_start_best = (
            self._best_history[0] if len(self._best_history) == self.window else None
        )
        self._best_history.append(self._best)
        self._best = min(self._best, signals.val_loss)

        if math.isnan(self._initial_top_score) and not math.isnan(signals.top_score):
            self._initial_top_score = signals.top_score

        if self._rounds <= self.min_rounds:
            return None

        if not math.isnan(signals.top_score) and not math.isnan(self._initial_top_score):
            floor = self.score_floor * self._initial_top_score
            if signals.top_score < floor:
                return (
                    f"score mass exhausted: top score {signals.top_score:.3e} fell below "
                    f"{self.score_floor:g} x initial {self._initial_top_score:.3e}"
                )

        if window_start_best is not None:
            scale = max(abs(window_start_best), 1e-12)
            improvement = (window_start_best - self._best) / scale
            if improvement < self.rel_improvement:
                return (
                    f"loss plateau: relative improvement {improvement:.2e} over the last "
                    f"{self.window} rounds is below {self.rel_improvement:g}"
                )
        return None

    def state(self) -> Dict[str, Any]:
        return {
            "best_loss": self._best,
            "rounds_seen": self._rounds,
            "window_fill": len(self._best_history),
            "initial_top_score": self._initial_top_score,
        }


STOPPING_POLICIES = ("patience", "adaptive")


def make_stopping(name: str, **kwargs) -> StoppingPolicy:
    """Build a stopping policy by registry name (CLI / config surface)."""
    if name == "patience":
        return PatienceStopping(**kwargs)
    if name == "adaptive":
        return AdaptiveStopping(**kwargs)
    raise KeyError(f"unknown stopping policy {name!r}; choose from {STOPPING_POLICIES}")
