"""The backdoor-unlearning loss (paper Eq. 2).

The loss is the aggregate cross-entropy of the *backdoor* inputs against
their *correct* (original) labels:

    L = sum_i CE(f'(x̌_i, θ'), y_i)

Its value is high while the model still routes triggered inputs to the
target class, and its gradient w.r.t. a parameter measures how much that
parameter contributes to the misclassification — the signal Grad-Prune uses
for filter selection.  Unlike gradient-ascent unlearning (e.g. Liu et al.
2022), this loss is never minimized directly; only its gradients are read.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

import numpy as np

from ..data.dataset import ImageDataset
from ..nn import Tensor, cross_entropy, no_grad
from ..nn.engine.training import training_step
from ..nn.module import Module
from ..telemetry import bus

__all__ = ["unlearning_loss_value", "unlearning_loss_backward"]


def unlearning_loss_value(
    model: Module,
    backdoor_set: ImageDataset,
    batch_size: int = 128,
    forward_fn: Optional[Callable[[Tensor], Tensor]] = None,
) -> float:
    """Evaluate Eq. 2 (sum reduction) without building gradients.

    Used for the stopping rule: after each pruning round the loss is
    re-evaluated on the *validation* backdoor set.

    Parameters
    ----------
    forward_fn:
        Optional replacement forward (e.g. a
        :class:`repro.nn.inference.CompiledInference` view of ``model``);
        defaults to calling the model directly.
    """
    if len(backdoor_set) == 0:
        raise ValueError("empty backdoor set")
    model.eval()
    forward = forward_fn if forward_fn is not None else model
    total = 0.0
    with no_grad():
        for start in range(0, len(backdoor_set), batch_size):
            images = backdoor_set.images[start : start + batch_size]
            labels = backdoor_set.labels[start : start + batch_size]
            logits = forward(Tensor(images))
            total += cross_entropy(logits, labels, reduction="sum").item()
    return total


def unlearning_loss_backward(
    model: Module, backdoor_set: ImageDataset, batch_size: int = 128
) -> float:
    """Run forward+backward of Eq. 2, accumulating gradients into the model.

    Gradients are cleared first, then accumulated over all batches (the sum
    reduction makes per-batch accumulation exact).  Returns the loss value.
    The model is evaluated in eval mode: the defender's batches are tiny and
    batch statistics would corrupt both the loss and its gradients.
    """
    if len(backdoor_set) == 0:
        raise ValueError("empty backdoor set")
    model.eval()
    # In-place zeroing keeps the .grad buffers of the previous scoring round
    # alive; this round's backward accumulates into the same hot memory.
    model.zero_grad(set_to_none=False)
    total = 0.0
    started = time.perf_counter()
    for start in range(0, len(backdoor_set), batch_size):
        images = backdoor_set.images[start : start + batch_size]
        labels = backdoor_set.labels[start : start + batch_size]
        with training_step((images.shape, images.dtype.str)):
            logits = model(Tensor(images))
            loss = cross_entropy(logits, labels, reduction="sum")
            loss.backward()
        total += loss.item()
    elapsed = time.perf_counter() - started
    if elapsed > 0:
        bus().metrics.gauge("training.samples_per_sec").set(len(backdoor_set) / elapsed)
    return total
