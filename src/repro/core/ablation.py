"""Ablation utilities for the design choices behind Grad-Prune.

DESIGN.md §6 calls out three choices worth isolating:

- **Scoring signal** (A1): unlearning-loss gradients (Eq. 3) vs. the
  alternatives used by prior work — clean-activation ranking (Fine-Pruning),
  weight magnitude, or random selection.  :func:`prune_by_strategy` prunes a
  fixed budget of filters under each signal so the signals are compared at
  equal sparsity.
- **Fine-tuning contribution** (A2): handled by
  :class:`~repro.core.defense.GradPruneConfig` flags (``skip_finetune``) and
  the tuner's optional backdoor data.
- **Stopping rule** (A3): sweeping ``alpha`` / ``P_p`` via
  :class:`~repro.core.pruner.GradientPruner` arguments.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..data.dataset import ImageDataset
from ..defenses.fine_pruning import mean_channel_activations
from ..models.pruning_utils import FilterRef, PruningMask, iter_conv_layers
from ..nn.module import Module
from .scoring import compute_filter_scores

__all__ = ["SCORING_STRATEGIES", "rank_filters", "prune_by_strategy"]

SCORING_STRATEGIES = ("gradient", "activation", "magnitude", "random")


def rank_filters(
    model: Module,
    strategy: str,
    backdoor_train: Optional[ImageDataset] = None,
    clean_train: Optional[ImageDataset] = None,
    rng: Optional[np.random.Generator] = None,
) -> List[FilterRef]:
    """Rank all conv filters by prune priority under a scoring strategy.

    - ``gradient``: Eq. 3 scores on backdoor data, highest first (the paper).
    - ``activation``: mean clean activation, *lowest* first (Fine-Pruning's
      dormant-neuron heuristic).
    - ``magnitude``: L1 weight norm per filter, lowest first (classic
      magnitude pruning).
    - ``random``: uniform shuffle (control).
    """
    if strategy not in SCORING_STRATEGIES:
        raise KeyError(f"unknown strategy {strategy!r}; choose from {SCORING_STRATEGIES}")

    if strategy == "gradient":
        if backdoor_train is None:
            raise ValueError("gradient strategy requires backdoor_train")
        scores, _ = compute_filter_scores(model, backdoor_train)
        return [ref for ref, _ in sorted(scores.items(), key=lambda kv: -kv[1])]

    if strategy == "activation":
        if clean_train is None:
            raise ValueError("activation strategy requires clean_train")
        activations = mean_channel_activations(model, clean_train)
        refs = [
            (FilterRef(layer, int(i)), float(value))
            for layer, values in activations.items()
            for i, value in enumerate(values)
        ]
        return [ref for ref, _ in sorted(refs, key=lambda kv: kv[1])]

    if strategy == "magnitude":
        refs = []
        for layer, conv in iter_conv_layers(model):
            norms = np.abs(conv.weight.data).reshape(conv.out_channels, -1).sum(axis=1)
            refs.extend((FilterRef(layer, int(i)), float(n)) for i, n in enumerate(norms))
        return [ref for ref, _ in sorted(refs, key=lambda kv: kv[1])]

    # random
    rng = rng if rng is not None else np.random.default_rng()
    refs = [
        FilterRef(layer, i)
        for layer, conv in iter_conv_layers(model)
        for i in range(conv.out_channels)
    ]
    order = rng.permutation(len(refs))
    return [refs[i] for i in order]


def prune_by_strategy(
    model: Module,
    strategy: str,
    budget: int,
    backdoor_train: Optional[ImageDataset] = None,
    clean_train: Optional[ImageDataset] = None,
    rng: Optional[np.random.Generator] = None,
) -> PruningMask:
    """Prune exactly ``budget`` filters under ``strategy`` (in place)."""
    if budget < 0:
        raise ValueError(f"budget must be >= 0, got {budget}")
    ranking = rank_filters(model, strategy, backdoor_train, clean_train, rng)
    mask = PruningMask(model)
    for ref in ranking[:budget]:
        mask.prune(ref)
    return mask
