"""Grad-Prune: the paper's end-to-end defense (§IV).

Composes the two stages:

1. :class:`~repro.core.pruner.GradientPruner` — iterative unlearning-gradient
   filter pruning with the alpha / ``P_p`` stopping rule;
2. :class:`~repro.core.tuner.FineTuner` — early-stopped fine-tuning on all
   clean + relabeled backdoor data (``P_t`` patience), with pruned filters
   masked throughout.

The defender's knobs are exactly the paper's: an acceptable accuracy drop
(alpha), and the two patience values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..defenses.base import Defense, DefenderData, DefenseReport
from ..models.pruning_utils import PruningMask
from ..nn.module import Module
from ..telemetry import emit
from .pruner import GradientPruner, PruningHistory
from .stopping import make_stopping
from .tuner import FineTuneHistory, FineTuner

__all__ = ["GradPruneConfig", "GradPruneDefense"]


@dataclass
class GradPruneConfig:
    """User-facing configuration (paper notation in parentheses)."""

    alpha: Optional[float] = None  # absolute accuracy floor (alpha); None = derive
    max_acc_drop: float = 0.10  # used to derive alpha when alpha is None
    prune_patience: int = 10  # P_p
    tune_patience: int = 5  # P_t
    max_rounds: Optional[int] = None
    tune_lr: float = 0.01
    tune_max_epochs: int = 50
    batch_size: int = 128
    tune_batch_size: int = 32
    seed: int = 0
    skip_finetune: bool = False  # ablation hook (A2)
    # Stopping rule: "patience" (the paper's fixed P_p) or "adaptive"
    # (plateau/score-mass detection over the streamed round signals).
    stopping: str = "patience"
    stopping_kwargs: Dict = field(default_factory=dict)


class GradPruneDefense(Defense):
    """Gradient-based unlearning pruning + fine-tuning."""

    name = "grad_prune"

    def __init__(self, config: Optional[GradPruneConfig] = None) -> None:
        self.config = config or GradPruneConfig()

    def apply(self, model: Module, data: DefenderData) -> DefenseReport:
        """Run Grad-Prune on ``model`` in place.

        Requires ``data.attack`` (assumption III-C: the defender synthesizes
        backdoor variants of its clean samples).
        """
        if data.attack is None:
            raise ValueError("GradPruneDefense requires an attack handle for synthesis")
        config = self.config
        backdoor_train = data.backdoor_train()
        backdoor_val = data.backdoor_val()

        stopping_kwargs = dict(config.stopping_kwargs)
        if config.stopping == "patience" and "patience" not in stopping_kwargs:
            stopping_kwargs["patience"] = config.prune_patience
        stopping = make_stopping(config.stopping, **stopping_kwargs)

        emit(
            "defense_started", "core.defense",
            defense=self.name, stopping=config.stopping,
            skip_finetune=config.skip_finetune, seed=config.seed,
        )
        mask = PruningMask(model)
        pruner = GradientPruner(
            alpha=config.alpha,
            max_acc_drop=config.max_acc_drop,
            patience=config.prune_patience,
            max_rounds=config.max_rounds,
            batch_size=config.batch_size,
            stopping=stopping,
        )
        prune_history: PruningHistory = pruner.prune(
            model, backdoor_train, data.clean_val, backdoor_val, mask=mask
        )

        tune_history: Optional[FineTuneHistory] = None
        if not config.skip_finetune:
            tuner = FineTuner(
                lr=config.tune_lr,
                patience=config.tune_patience,
                max_epochs=config.tune_max_epochs,
                batch_size=config.tune_batch_size,
                seed=config.seed,
            )
            tune_history = tuner.tune(
                model,
                clean_train=data.clean_train,
                clean_val=data.clean_val,
                backdoor_train=backdoor_train,
                backdoor_val=backdoor_val,
                mask=mask,
            )

        emit(
            "defense_finished", "core.defense",
            defense=self.name, num_pruned=prune_history.num_pruned,
            sparsity=mask.sparsity(), stopping=prune_history.stop_policy,
            prune_stop_reason=prune_history.stop_reason,
            tune_stop_reason=tune_history.stop_reason if tune_history else "skipped",
        )
        return DefenseReport(
            name=self.name,
            details={
                "pruned_filters": [str(r) for r in mask.pruned_refs],
                "num_pruned": prune_history.num_pruned,
                "sparsity": mask.sparsity(),
                "prune_stop_reason": prune_history.stop_reason,
                "stop_policy": prune_history.stop_policy,
                "prune_history": prune_history,
                "tune_history": tune_history,
                "tune_stop_reason": tune_history.stop_reason if tune_history else "skipped",
            },
        )
