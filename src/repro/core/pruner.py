"""Iterative gradient-based filter pruning (paper §IV-B).

Each round:

1. compute Eq. 3 scores on the defender's *training* backdoor data;
2. prune the filter with the highest ξ (zero its weights and bias);
3. re-evaluate the unlearning loss and the main-task (clean) accuracy on the
   held-out *validation* data.

The loop stops when the validation clean accuracy falls below the threshold
``alpha`` (the offending prune is rolled back) or when the validation
unlearning loss fails to improve for ``patience`` (= the paper's ``P_p``)
consecutive rounds.

Both per-round validation metrics come from one fused forward sweep
(:class:`repro.core.evaluator.FusedEvaluator`) over a conv–BN-folded
compiled view of the model; each :class:`PruningRound` records how long its
scoring backward and validation sweep took, so bench runs can attribute
wall time.  ``REPRO_DISABLE_FAST_PATH=1`` (or ``use_fast_path=False``)
restores the reference two-pass evaluation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..data.dataset import ImageDataset
from ..models.pruning_utils import FilterRef, PruningMask
from ..nn.module import Module
from .evaluator import FusedEvaluator
from .scoring import compute_filter_scores, top_filter

__all__ = ["PruningRound", "PruningHistory", "GradientPruner"]


@dataclass
class PruningRound:
    """Telemetry of one pruning round.

    ``score_seconds`` is the Eq. 3 scoring pass (unlearning-loss backward on
    the defender's training backdoor set); ``eval_seconds`` is the fused
    validation sweep driving the stopping rule.
    """

    round_index: int
    pruned: FilterRef
    score: float
    val_unlearning_loss: float
    val_accuracy: float
    rolled_back: bool = False
    score_seconds: float = 0.0
    eval_seconds: float = 0.0


@dataclass
class PruningHistory:
    """Full record of a pruning run."""

    rounds: List[PruningRound] = field(default_factory=list)
    initial_val_accuracy: float = float("nan")
    initial_val_loss: float = float("nan")
    stop_reason: str = ""
    initial_eval_seconds: float = 0.0
    num_folded_layers: int = 0

    @property
    def num_pruned(self) -> int:
        return sum(1 for r in self.rounds if not r.rolled_back)

    @property
    def total_score_seconds(self) -> float:
        return sum(r.score_seconds for r in self.rounds)

    @property
    def total_eval_seconds(self) -> float:
        return self.initial_eval_seconds + sum(r.eval_seconds for r in self.rounds)


class GradientPruner:
    """The paper's gradient-informed pruning loop.

    Parameters
    ----------
    alpha:
        Absolute clean-accuracy floor on the validation set.  When None, it
        is derived per-run as ``initial_val_accuracy - max_acc_drop``.
    max_acc_drop:
        Acceptable accuracy reduction used to derive ``alpha`` (this is the
        "intuitive" knob the paper advertises: defenders state how much
        clean accuracy they are willing to spend).
    patience:
        The paper's ``P_p``: rounds without validation-loss improvement
        before stopping.
    max_rounds:
        Hard cap on pruning rounds (safety net; the paper's loop is bounded
        by the filter count).
    batch_size:
        Batch size for loss/score computation.
    use_fast_path:
        Evaluate the stopping rule through the fused conv–BN-folded
        inference path.  Scores (Eq. 3) always use the reference autograd
        path; only the no-grad validation sweeps are accelerated, so results
        agree with the reference within float32 tolerance.
    """

    def __init__(
        self,
        alpha: Optional[float] = None,
        max_acc_drop: float = 0.10,
        patience: int = 10,
        max_rounds: Optional[int] = None,
        batch_size: int = 128,
        use_fast_path: bool = True,
    ) -> None:
        if alpha is not None and not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if max_acc_drop < 0:
            raise ValueError(f"max_acc_drop must be >= 0, got {max_acc_drop}")
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.alpha = alpha
        self.max_acc_drop = max_acc_drop
        self.patience = patience
        self.max_rounds = max_rounds
        self.batch_size = batch_size
        self.use_fast_path = use_fast_path

    def prune(
        self,
        model: Module,
        backdoor_train: ImageDataset,
        clean_val: ImageDataset,
        backdoor_val: ImageDataset,
        mask: Optional[PruningMask] = None,
    ) -> PruningHistory:
        """Run the pruning loop; returns history.  ``mask`` records prunes.

        ``backdoor_train`` drives scoring; ``clean_val`` / ``backdoor_val``
        drive the stopping rule, never the scores (paper §IV-B's split).
        """
        mask = mask if mask is not None else PruningMask(model)
        history = PruningHistory()
        evaluator = FusedEvaluator(
            model,
            clean_val,
            backdoor_val,
            batch_size=self.batch_size,
            use_fast_path=self.use_fast_path,
        )
        initial = evaluator.evaluate()
        history.initial_val_accuracy = initial.accuracy
        history.initial_val_loss = initial.unlearning_loss
        history.initial_eval_seconds = initial.seconds
        history.num_folded_layers = evaluator.num_folded
        alpha = self.alpha
        if alpha is None:
            alpha = max(0.0, history.initial_val_accuracy - self.max_acc_drop)

        best_loss = history.initial_val_loss
        rounds_since_improvement = 0
        round_index = 0
        max_rounds = self.max_rounds if self.max_rounds is not None else float("inf")

        while round_index < max_rounds:
            score_start = time.perf_counter()
            pruned_set = set(mask.pruned_refs)
            scores, _train_loss = compute_filter_scores(
                model, backdoor_train, exclude=pruned_set, batch_size=self.batch_size
            )
            score_seconds = time.perf_counter() - score_start
            if not scores:
                history.stop_reason = "no prunable filters remain"
                break
            target = top_filter(scores)
            saved = mask.prune(target)

            report = evaluator.evaluate()
            val_loss = report.unlearning_loss
            val_acc = report.accuracy
            record = PruningRound(
                round_index=round_index,
                pruned=target,
                score=scores[target],
                val_unlearning_loss=val_loss,
                val_accuracy=val_acc,
                score_seconds=score_seconds,
                eval_seconds=report.seconds,
            )

            if val_acc < alpha:
                # This prune broke the main task: roll it back and stop.
                mask.unprune(target, saved)
                record.rolled_back = True
                history.rounds.append(record)
                history.stop_reason = (
                    f"validation accuracy {val_acc:.4f} fell below alpha={alpha:.4f}"
                )
                break

            history.rounds.append(record)
            if val_loss < best_loss:
                best_loss = val_loss
                rounds_since_improvement = 0
            else:
                rounds_since_improvement += 1
                if rounds_since_improvement >= self.patience:
                    history.stop_reason = (
                        f"unlearning loss did not improve for {self.patience} rounds"
                    )
                    break
            round_index += 1
        else:
            history.stop_reason = f"reached max_rounds={self.max_rounds}"

        if not history.stop_reason:
            history.stop_reason = f"reached max_rounds={self.max_rounds}"
        return history
