"""Iterative gradient-based filter pruning (paper §IV-B).

Each round:

1. compute Eq. 3 scores on the defender's *training* backdoor data;
2. prune the filter with the highest ξ (zero its weights and bias);
3. re-evaluate the unlearning loss and the main-task (clean) accuracy on the
   held-out *validation* data.

The loop stops when the validation clean accuracy falls below the threshold
``alpha`` (the offending prune is rolled back) or when the configured
:class:`~repro.core.stopping.StoppingPolicy` says so — by default the
paper's fixed patience ``P_p``
(:class:`~repro.core.stopping.PatienceStopping`); pass
:class:`~repro.core.stopping.AdaptiveStopping` for the plateau/score-mass
rule evaluated in the ``ablation_stopping_adaptive`` benchmark.

Both per-round validation metrics come from one fused forward sweep
(:class:`repro.core.evaluator.FusedEvaluator`) over a conv–BN-folded
compiled view of the model; each :class:`PruningRound` records how long its
scoring backward and validation sweep took, so bench runs can attribute
wall time.  ``REPRO_DISABLE_FAST_PATH=1`` (or ``use_fast_path=False``)
restores the reference two-pass evaluation.

Every round is also published on the telemetry bus
(:mod:`repro.telemetry`) as a ``prune_round`` event — filter identity and
score, loss/accuracy trajectory, per-phase timings, and the stopping
policy's internal state — bracketed by ``prune_started`` /
``prune_finished``.  With no sink attached the emission is a no-op check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..data.dataset import ImageDataset
from ..models.pruning_utils import FilterRef, PruningMask
from ..nn.module import Module
from ..telemetry import emit
from .evaluator import FusedEvaluator
from .scoring import compute_filter_scores, top_filter
from .stopping import PatienceStopping, RoundSignals, StoppingPolicy

__all__ = ["PruningRound", "PruningHistory", "GradientPruner"]

_SOURCE = "core.pruner"


@dataclass
class PruningRound:
    """Telemetry of one pruning round.

    ``score_seconds`` is the Eq. 3 scoring pass (unlearning-loss backward on
    the defender's training backdoor set); ``eval_seconds`` is the fused
    validation sweep driving the stopping rule.
    """

    round_index: int
    pruned: FilterRef
    score: float
    val_unlearning_loss: float
    val_accuracy: float
    rolled_back: bool = False
    score_seconds: float = 0.0
    eval_seconds: float = 0.0


@dataclass
class PruningHistory:
    """Full record of a pruning run."""

    rounds: List[PruningRound] = field(default_factory=list)
    initial_val_accuracy: float = float("nan")
    initial_val_loss: float = float("nan")
    stop_reason: str = ""
    stop_policy: str = "patience"
    initial_eval_seconds: float = 0.0
    num_folded_layers: int = 0

    @property
    def num_pruned(self) -> int:
        return sum(1 for r in self.rounds if not r.rolled_back)

    @property
    def total_score_seconds(self) -> float:
        return sum(r.score_seconds for r in self.rounds)

    @property
    def total_eval_seconds(self) -> float:
        return self.initial_eval_seconds + sum(r.eval_seconds for r in self.rounds)

    def per_layer_pruned(self) -> Dict[str, int]:
        """Effective (non-rolled-back) prune count per conv layer."""
        counts: Dict[str, int] = {}
        for record in self.rounds:
            if not record.rolled_back:
                counts[record.pruned.layer] = counts.get(record.pruned.layer, 0) + 1
        return counts


class GradientPruner:
    """The paper's gradient-informed pruning loop.

    Parameters
    ----------
    alpha:
        Absolute clean-accuracy floor on the validation set.  When None, it
        is derived per-run as ``initial_val_accuracy - max_acc_drop``.
    max_acc_drop:
        Acceptable accuracy reduction used to derive ``alpha`` (this is the
        "intuitive" knob the paper advertises: defenders state how much
        clean accuracy they are willing to spend).
    patience:
        The paper's ``P_p``: rounds without validation-loss improvement
        before stopping.  Ignored when ``stopping`` is given.
    max_rounds:
        Hard cap on pruning rounds (safety net; the paper's loop is bounded
        by the filter count).
    batch_size:
        Batch size for loss/score computation.
    use_fast_path:
        Evaluate the stopping rule through the fused conv–BN-folded
        inference path.  Scores (Eq. 3) run the engine-dispatched training
        path (im2col-GEMM backward with column reuse) unless
        ``REPRO_DISABLE_FAST_PATH=1``; both paths agree with the reference
        autograd within float32 tolerance.
    stopping:
        A :class:`~repro.core.stopping.StoppingPolicy` instance replacing
        the default ``PatienceStopping(patience)``.  The accuracy floor
        ``alpha`` applies regardless of policy.
    """

    def __init__(
        self,
        alpha: Optional[float] = None,
        max_acc_drop: float = 0.10,
        patience: int = 10,
        max_rounds: Optional[int] = None,
        batch_size: int = 128,
        use_fast_path: bool = True,
        stopping: Optional[StoppingPolicy] = None,
    ) -> None:
        if alpha is not None and not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        if max_acc_drop < 0:
            raise ValueError(f"max_acc_drop must be >= 0, got {max_acc_drop}")
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.alpha = alpha
        self.max_acc_drop = max_acc_drop
        self.patience = patience
        self.max_rounds = max_rounds
        self.batch_size = batch_size
        self.use_fast_path = use_fast_path
        self.stopping = stopping

    def prune(
        self,
        model: Module,
        backdoor_train: ImageDataset,
        clean_val: ImageDataset,
        backdoor_val: ImageDataset,
        mask: Optional[PruningMask] = None,
    ) -> PruningHistory:
        """Run the pruning loop; returns history.  ``mask`` records prunes.

        ``backdoor_train`` drives scoring; ``clean_val`` / ``backdoor_val``
        drive the stopping rule, never the scores (paper §IV-B's split).
        """
        mask = mask if mask is not None else PruningMask(model)
        policy = self.stopping if self.stopping is not None else PatienceStopping(self.patience)
        history = PruningHistory(stop_policy=policy.name)
        evaluator = FusedEvaluator(
            model,
            clean_val,
            backdoor_val,
            batch_size=self.batch_size,
            use_fast_path=self.use_fast_path,
        )
        initial = evaluator.evaluate()
        history.initial_val_accuracy = initial.accuracy
        history.initial_val_loss = initial.unlearning_loss
        history.initial_eval_seconds = initial.seconds
        history.num_folded_layers = evaluator.num_folded
        alpha = self.alpha
        if alpha is None:
            alpha = max(0.0, history.initial_val_accuracy - self.max_acc_drop)

        policy.reset(history.initial_val_loss)
        round_index = 0
        max_rounds = self.max_rounds if self.max_rounds is not None else float("inf")
        emit(
            "prune_started", _SOURCE,
            policy=policy.name, alpha=alpha, max_rounds=self.max_rounds,
            initial_val_accuracy=initial.accuracy,
            initial_val_loss=initial.unlearning_loss,
            num_folded_layers=evaluator.num_folded,
        )

        while round_index < max_rounds:
            score_start = time.perf_counter()
            pruned_set = set(mask.pruned_refs)
            scores, _train_loss = compute_filter_scores(
                model, backdoor_train, exclude=pruned_set, batch_size=self.batch_size
            )
            score_seconds = time.perf_counter() - score_start
            if not scores:
                history.stop_reason = "no prunable filters remain"
                break
            target = top_filter(scores)
            top_score = scores[target]
            score_mass = float(sum(scores.values()))
            saved = mask.prune(target)

            report = evaluator.evaluate()
            val_loss = report.unlearning_loss
            val_acc = report.accuracy
            record = PruningRound(
                round_index=round_index,
                pruned=target,
                score=top_score,
                val_unlearning_loss=val_loss,
                val_accuracy=val_acc,
                score_seconds=score_seconds,
                eval_seconds=report.seconds,
            )

            broke_floor = val_acc < alpha
            stop_reason: Optional[str] = None
            if broke_floor:
                # This prune broke the main task: roll it back and stop.
                mask.unprune(target, saved)
                record.rolled_back = True
                stop_reason = (
                    f"validation accuracy {val_acc:.4f} fell below alpha={alpha:.4f}"
                )
            history.rounds.append(record)
            if stop_reason is None:
                stop_reason = policy.update(
                    RoundSignals(
                        round_index=round_index,
                        val_loss=val_loss,
                        val_accuracy=val_acc,
                        top_score=top_score,
                        score_mass=score_mass,
                        num_pruned=history.num_pruned,
                    )
                )
            emit(
                "prune_round", _SOURCE,
                round=round_index, layer=target.layer, filter=target.index,
                score=top_score, score_mass=score_mass,
                val_loss=val_loss, val_acc=val_acc,
                rolled_back=record.rolled_back, num_pruned=history.num_pruned,
                score_seconds=score_seconds, eval_seconds=report.seconds,
                policy=policy.name, policy_state=policy.state(),
            )
            if stop_reason is not None:
                history.stop_reason = stop_reason
                break
            round_index += 1
        else:
            history.stop_reason = f"reached max_rounds={self.max_rounds}"

        if not history.stop_reason:
            history.stop_reason = f"reached max_rounds={self.max_rounds}"
        emit(
            "prune_finished", _SOURCE,
            rounds=len(history.rounds), num_pruned=history.num_pruned,
            stop_reason=history.stop_reason, policy=policy.name,
            per_layer=history.per_layer_pruned(),
            score_seconds=history.total_score_seconds,
            eval_seconds=history.total_eval_seconds,
        )
        return history
