"""The paper's contribution: gradient-based unlearning pruning (Grad-Prune)."""

from .ablation import SCORING_STRATEGIES, prune_by_strategy, rank_filters
from .analysis import pruned_vs_kept_sensitivity, pruning_depth_profile, trigger_sensitivity
from .defense import GradPruneConfig, GradPruneDefense
from .evaluator import FusedEvalReport, FusedEvaluator
from .pruner import GradientPruner, PruningHistory, PruningRound
from .scoring import compute_filter_scores, filter_scores_from_grads, top_filter
from .stopping import (
    STOPPING_POLICIES,
    AdaptiveStopping,
    PatienceStopping,
    RoundSignals,
    StoppingPolicy,
    make_stopping,
)
from .tuner import FineTuneHistory, FineTuner
from .unlearning import unlearning_loss_backward, unlearning_loss_value

__all__ = [
    "unlearning_loss_value",
    "unlearning_loss_backward",
    "filter_scores_from_grads",
    "compute_filter_scores",
    "top_filter",
    "FusedEvaluator",
    "FusedEvalReport",
    "GradientPruner",
    "PruningHistory",
    "PruningRound",
    "StoppingPolicy",
    "PatienceStopping",
    "AdaptiveStopping",
    "RoundSignals",
    "STOPPING_POLICIES",
    "make_stopping",
    "FineTuner",
    "FineTuneHistory",
    "GradPruneConfig",
    "GradPruneDefense",
    "SCORING_STRATEGIES",
    "rank_filters",
    "prune_by_strategy",
    "pruning_depth_profile",
    "trigger_sensitivity",
    "pruned_vs_kept_sensitivity",
]
