"""Post-defense analysis: where did the pruning land, and was it right?

The paper argues that unlearning-loss gradients localize "backdoor
elements".  These helpers quantify that on a concrete run:

- :func:`pruning_depth_profile` — distribution of pruned filters over the
  network's layers (backdoor shortcuts tend to sit early for patch
  triggers, deeper for semantic ones);
- :func:`trigger_sensitivity` — per-filter activation difference between
  triggered and clean inputs (an attack-aware ground-truth-ish signal);
- :func:`pruned_vs_kept_sensitivity` — did the defense prune filters that
  actually respond to the trigger more than the ones it kept?
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..attacks.base import BackdoorAttack
from ..data.dataset import ImageDataset
from ..defenses.fine_pruning import mean_channel_activations
from ..models.pruning_utils import FilterRef, iter_conv_layers
from ..nn.module import Module

__all__ = ["pruning_depth_profile", "trigger_sensitivity", "pruned_vs_kept_sensitivity"]


def pruning_depth_profile(
    model: Module, pruned: Sequence[FilterRef]
) -> List[Tuple[str, int, int]]:
    """Per-layer (name, pruned_count, total_filters), in network order."""
    pruned_by_layer: Dict[str, int] = {}
    for ref in pruned:
        pruned_by_layer[ref.layer] = pruned_by_layer.get(ref.layer, 0) + 1
    profile = []
    for name, conv in iter_conv_layers(model):
        profile.append((name, pruned_by_layer.get(name, 0), conv.out_channels))
    return profile


def trigger_sensitivity(
    model: Module,
    clean_data: ImageDataset,
    attack: BackdoorAttack,
    batch_size: int = 128,
    normalize: bool = True,
) -> Dict[FilterRef, float]:
    """Per-filter response to the trigger: spatial max of |a(x̌) - a(x)|.

    Runs paired forward passes (clean / triggered) and, per conv channel,
    takes the **max over spatial positions** of the absolute activation
    difference, averaged over images.  The spatial max matters: a 3x3 patch
    moves the *mean* of a 32x32 feature map by ~1 %, but moves the peak of a
    trigger-detector channel enormously.  With ``normalize=True`` each
    channel is scaled by its mean clean activation magnitude, making layers
    of different activation scales comparable.
    """
    from ..nn import Tensor, no_grad

    triggered_images = attack.apply(clean_data.images)
    sums: Dict[str, np.ndarray] = {}
    clean_mags: Dict[str, np.ndarray] = {}
    count = 0
    captured: Dict[str, np.ndarray] = {}
    handles = []

    def make_hook(name: str):
        def hook(_module, output) -> None:
            captured[name] = output.data

        return hook

    for name, conv in iter_conv_layers(model):
        handles.append(conv.register_forward_hook(make_hook(name)))
    model.eval()
    try:
        with no_grad():
            for start in range(0, len(clean_data), batch_size):
                model(Tensor(clean_data.images[start : start + batch_size]))
                clean_caps = {k: v for k, v in captured.items()}
                model(Tensor(triggered_images[start : start + batch_size]))
                for name, clean_act in clean_caps.items():
                    diff = np.abs(captured[name] - clean_act)  # (N, C, H, W)
                    peak = diff.max(axis=(2, 3)).sum(axis=0)  # sum over images
                    sums[name] = sums.get(name, 0.0) + peak
                    clean_mags[name] = (
                        clean_mags.get(name, 0.0)
                        + np.abs(clean_act).mean(axis=(2, 3)).sum(axis=0)
                    )
                count += clean_act.shape[0]
    finally:
        for handle in handles:
            handle.remove()

    sensitivity: Dict[FilterRef, float] = {}
    for layer, totals in sums.items():
        values = totals / count
        if normalize:
            scale = clean_mags[layer] / count + 1e-6
            values = values / scale
        for index, value in enumerate(values):
            sensitivity[FilterRef(layer, index)] = float(value)
    return sensitivity


def pruned_vs_kept_sensitivity(
    sensitivity: Dict[FilterRef, float], pruned: Sequence[FilterRef]
) -> Dict[str, float]:
    """Compare trigger sensitivity of pruned vs kept filters.

    Returns means for both populations and their ratio (``> 1`` means the
    defense preferentially pruned trigger-responsive filters).  Sensitivity
    should be measured on the *pre-defense* model, since pruned filters are
    zero afterwards.
    """
    pruned_set = set(pruned)
    pruned_values = [v for ref, v in sensitivity.items() if ref in pruned_set]
    kept_values = [v for ref, v in sensitivity.items() if ref not in pruned_set]
    if not pruned_values or not kept_values:
        raise ValueError("need at least one pruned and one kept filter")
    pruned_mean = float(np.mean(pruned_values))
    kept_mean = float(np.mean(kept_values))
    return {
        "pruned_mean": pruned_mean,
        "kept_mean": kept_mean,
        "ratio": pruned_mean / max(kept_mean, 1e-12),
        "num_pruned": float(len(pruned_values)),
        "num_kept": float(len(kept_values)),
    }
