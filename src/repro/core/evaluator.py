"""Fused pruning-loop evaluator: clean accuracy + Eq. 2 loss in one sweep.

Each pruning round must re-measure two quantities on the held-out validation
splits: the main-task (clean) accuracy and the unlearning loss on the
triggered validation set.  The reference implementation walks the model over
the two datasets in two separate passes; :class:`FusedEvaluator` concatenates
the splits once at construction and computes both metrics from a **single
batched forward sweep** over the combined array, running the model through a
:class:`repro.nn.inference.CompiledInference` view (conv–BN folding + the
no-grad kernel fast path).  Batches are packed across the split boundary, so
no partial batch is wasted between the two datasets.

Numerical contract: the returned accuracy is bit-identical to
:func:`repro.training.evaluate_accuracy` modulo fast-path float reassociation,
and the loss matches :func:`repro.core.unlearning.unlearning_loss_value`
within float32 tolerance (the sum reduction is batching-invariant).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..data.dataset import ImageDataset
from ..nn import Tensor, cross_entropy, no_grad
from ..nn.functional import fast_path_enabled
from ..nn.inference import CompiledInference
from ..nn.module import Module

__all__ = ["FusedEvalReport", "FusedEvaluator"]


@dataclass
class FusedEvalReport:
    """One fused validation sweep: both stopping-rule metrics plus telemetry."""

    accuracy: float
    unlearning_loss: float
    seconds: float
    num_folded: int = 0


class FusedEvaluator:
    """Evaluate clean accuracy and the unlearning loss in one forward sweep.

    Parameters
    ----------
    model:
        The model under pruning; evaluated in eval mode.
    clean_val:
        Clean validation split (drives the accuracy floor ``alpha``).
    backdoor_val:
        Triggered validation split with *correct* labels (drives Eq. 2).
    batch_size:
        Forward batch size over the concatenated array.
    use_fast_path:
        When True (and ``REPRO_DISABLE_FAST_PATH`` is unset), forwards run
        through a compiled conv–BN-folded view of the model.  The compiled
        view is invalidated automatically by prune/unprune mutations.
    """

    def __init__(
        self,
        model: Module,
        clean_val: ImageDataset,
        backdoor_val: ImageDataset,
        batch_size: int = 128,
        use_fast_path: bool = True,
    ) -> None:
        if len(clean_val) == 0:
            raise ValueError("cannot evaluate on an empty clean validation set")
        if len(backdoor_val) == 0:
            raise ValueError("empty backdoor set")
        self._model = model
        self._clean_count = len(clean_val)
        self._images = np.concatenate([clean_val.images, backdoor_val.images], axis=0)
        self._clean_labels = np.asarray(clean_val.labels)
        self._backdoor_labels = np.asarray(backdoor_val.labels)
        self.batch_size = batch_size
        self._compiled: CompiledInference | None = None
        if use_fast_path and fast_path_enabled():
            self._compiled = CompiledInference(model, Tensor(self._images[:1]))

    @property
    def num_folded(self) -> int:
        """Conv–BN pairs folded by the compiled view (0 on the reference path)."""
        return self._compiled.num_folded if self._compiled is not None else 0

    def _forward(self, batch: np.ndarray) -> np.ndarray:
        if self._compiled is not None:
            return self._compiled(Tensor(batch)).data
        with no_grad():
            return self._model(Tensor(batch)).data

    def evaluate(self) -> FusedEvalReport:
        """One fused sweep; returns accuracy, Eq. 2 loss, and wall time."""
        start_time = time.perf_counter()
        self._model.eval()
        total = self._images.shape[0]
        boundary = self._clean_count
        correct = 0
        loss_total = 0.0
        for start in range(0, total, self.batch_size):
            stop = min(start + self.batch_size, total)
            logits = self._forward(self._images[start:stop])
            if start < boundary:  # clean part: accuracy
                clean_stop = min(stop, boundary)
                predictions = logits[: clean_stop - start].argmax(axis=1)
                correct += int((predictions == self._clean_labels[start:clean_stop]).sum())
            if stop > boundary:  # backdoor part: Eq. 2 sum-reduced cross-entropy
                bd_start = max(start, boundary)
                labels = self._backdoor_labels[bd_start - boundary : stop - boundary]
                loss = cross_entropy(
                    Tensor(logits[bd_start - start :]), labels, reduction="sum"
                )
                loss_total += loss.item()
        return FusedEvalReport(
            accuracy=correct / boundary,
            unlearning_loss=loss_total,
            seconds=time.perf_counter() - start_time,
            num_folded=self.num_folded,
        )
