"""Dataset containers and minibatch loading."""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ImageDataset", "DataLoader"]


class ImageDataset:
    """In-memory labeled image dataset.

    Parameters
    ----------
    images:
        Array of shape ``(N, C, H, W)``, float32, values in [0, 1].
    labels:
        Integer class labels of shape ``(N,)``.
    """

    def __init__(self, images: np.ndarray, labels: np.ndarray) -> None:
        images = np.asarray(images, dtype=np.float32)
        labels = np.asarray(labels, dtype=np.int64).reshape(-1)
        if images.ndim != 4:
            raise ValueError(f"images must be (N, C, H, W), got shape {images.shape}")
        if len(images) != len(labels):
            raise ValueError(f"images ({len(images)}) and labels ({len(labels)}) disagree")
        self.images = images
        self.labels = labels

    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.images[index], self.labels[index]

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if len(self.labels) else 0

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return tuple(self.images.shape[1:])

    def subset(self, indices: Sequence[int]) -> "ImageDataset":
        """Return a new dataset restricted to ``indices`` (copies)."""
        indices = np.asarray(indices, dtype=np.int64)
        return ImageDataset(self.images[indices].copy(), self.labels[indices].copy())

    def concat(self, other: "ImageDataset") -> "ImageDataset":
        """Concatenate two datasets."""
        return ImageDataset(
            np.concatenate([self.images, other.images], axis=0),
            np.concatenate([self.labels, other.labels], axis=0),
        )

    def with_labels(self, labels: np.ndarray) -> "ImageDataset":
        """Return a dataset with the same images and new labels."""
        return ImageDataset(self.images.copy(), np.asarray(labels))

    def class_counts(self) -> np.ndarray:
        """Samples per class (length = num_classes)."""
        return np.bincount(self.labels, minlength=self.num_classes)


class DataLoader:
    """Iterate minibatches of (images, labels).

    Parameters
    ----------
    dataset:
        Source :class:`ImageDataset`.
    batch_size:
        Number of samples per batch.
    shuffle:
        Reshuffle at the start of every epoch.
    rng:
        Generator for shuffling (deterministic when provided).
    transform:
        Optional callable applied to each image batch (augmentation).
    drop_last:
        Drop the final incomplete batch.
    """

    def __init__(
        self,
        dataset: ImageDataset,
        batch_size: int = 32,
        shuffle: bool = False,
        rng: Optional[np.random.Generator] = None,
        transform=None,
        drop_last: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.rng = rng if rng is not None else np.random.default_rng()
        self.transform = transform
        self.drop_last = drop_last

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        stop = n - (n % self.batch_size) if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            images, labels = self.dataset[idx]
            if self.transform is not None:
                images = self.transform(images, self.rng)
            yield images, labels
