"""Data substrate: synthetic datasets, loaders, transforms, SPC splits."""

from .dataset import DataLoader, ImageDataset
from .splits import defender_split, spc_subset, train_val_split
from .synthetic import SynthSpec, make_synth_cifar, make_synth_gtsrb
from .transforms import Compose, Cutout, Normalize, RandomCrop, RandomHorizontalFlip

__all__ = [
    "ImageDataset",
    "DataLoader",
    "make_synth_cifar",
    "make_synth_gtsrb",
    "SynthSpec",
    "spc_subset",
    "train_val_split",
    "defender_split",
    "Compose",
    "RandomCrop",
    "RandomHorizontalFlip",
    "Normalize",
    "Cutout",
]
