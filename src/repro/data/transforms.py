"""Batch-level image transforms (training augmentation and normalization).

Transforms operate on numpy batches of shape ``(N, C, H, W)`` and take the
loader's generator, keeping augmentation deterministic per seed.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["Compose", "RandomCrop", "RandomHorizontalFlip", "Normalize", "Cutout"]

BatchTransform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


class Compose:
    """Apply transforms in order."""

    def __init__(self, transforms: Sequence[BatchTransform]) -> None:
        self.transforms = list(transforms)

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for transform in self.transforms:
            batch = transform(batch, rng)
        return batch


class RandomCrop:
    """Pad by ``padding`` pixels and crop back to the original size."""

    def __init__(self, padding: int = 2) -> None:
        self.padding = padding

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        p = self.padding
        n, c, h, w = batch.shape
        padded = np.pad(batch, ((0, 0), (0, 0), (p, p), (p, p)), mode="reflect")
        out = np.empty_like(batch)
        tops = rng.integers(0, 2 * p + 1, size=n)
        lefts = rng.integers(0, 2 * p + 1, size=n)
        for i in range(n):
            out[i] = padded[i, :, tops[i] : tops[i] + h, lefts[i] : lefts[i] + w]
        return out


class RandomHorizontalFlip:
    """Flip each image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5) -> None:
        self.p = p

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        flips = rng.random(len(batch)) < self.p
        out = batch.copy()
        out[flips] = out[flips, :, :, ::-1]
        return out


class Normalize:
    """Per-channel standardization."""

    def __init__(self, mean: Sequence[float], std: Sequence[float]) -> None:
        self.mean = np.asarray(mean, dtype=np.float32).reshape(1, -1, 1, 1)
        self.std = np.asarray(std, dtype=np.float32).reshape(1, -1, 1, 1)

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return (batch - self.mean) / self.std


class Cutout:
    """Zero a random square patch (regularization)."""

    def __init__(self, size: int = 8) -> None:
        self.size = size

    def __call__(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        n, _, h, w = batch.shape
        out = batch.copy()
        tops = rng.integers(0, max(1, h - self.size + 1), size=n)
        lefts = rng.integers(0, max(1, w - self.size + 1), size=n)
        for i in range(n):
            out[i, :, tops[i] : tops[i] + self.size, lefts[i] : lefts[i] + self.size] = 0.0
        return out
