"""Data splitting utilities for the defense protocol.

The paper's defenders get a fixed number of *samples per class* (SPC), and
approaches that need validation data reserve 10 % of it — except SPC=2,
where one sample per class trains and one validates (paper §V-B).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .dataset import ImageDataset

__all__ = ["spc_subset", "train_val_split", "defender_split"]


def spc_subset(
    dataset: ImageDataset, spc: int, rng: Optional[np.random.Generator] = None
) -> ImageDataset:
    """Sample ``spc`` examples per class uniformly without replacement."""
    if spc <= 0:
        raise ValueError(f"spc must be positive, got {spc}")
    rng = rng if rng is not None else np.random.default_rng()
    chosen = []
    for cls in range(dataset.num_classes):
        pool = np.flatnonzero(dataset.labels == cls)
        if len(pool) < spc:
            raise ValueError(
                f"class {cls} has only {len(pool)} samples, cannot draw spc={spc}"
            )
        chosen.append(rng.choice(pool, size=spc, replace=False))
    indices = np.concatenate(chosen)
    rng.shuffle(indices)
    return dataset.subset(indices)


def train_val_split(
    dataset: ImageDataset, val_fraction: float, rng: Optional[np.random.Generator] = None
) -> Tuple[ImageDataset, ImageDataset]:
    """Random split into (train, val) with at least one sample in each part."""
    if not 0.0 < val_fraction < 1.0:
        raise ValueError(f"val_fraction must be in (0, 1), got {val_fraction}")
    rng = rng if rng is not None else np.random.default_rng()
    n = len(dataset)
    if n < 2:
        raise ValueError("need at least 2 samples to split")
    n_val = min(max(1, int(round(n * val_fraction))), n - 1)
    order = rng.permutation(n)
    return dataset.subset(order[n_val:]), dataset.subset(order[:n_val])


def defender_split(
    dataset: ImageDataset, spc: int, rng: Optional[np.random.Generator] = None
) -> Tuple[ImageDataset, ImageDataset]:
    """Paper-protocol defender data: SPC subset split into (train, val).

    SPC = 2 → one sample per class for training, one for validation.
    Otherwise → 10 % of the SPC subset for validation (stratified per class
    so small-SPC cases keep class coverage in both halves).
    """
    rng = rng if rng is not None else np.random.default_rng()
    subset = spc_subset(dataset, spc, rng)
    if spc == 2:
        train_idx, val_idx = [], []
        for cls in range(subset.num_classes):
            pool = np.flatnonzero(subset.labels == cls)
            rng.shuffle(pool)
            train_idx.append(pool[0])
            val_idx.append(pool[1])
        return subset.subset(np.array(train_idx)), subset.subset(np.array(val_idx))
    # Stratified 10 %: at least one validation sample per class.
    train_idx, val_idx = [], []
    per_class_val = max(1, int(round(spc * 0.1)))
    for cls in range(subset.num_classes):
        pool = np.flatnonzero(subset.labels == cls)
        rng.shuffle(pool)
        val_idx.extend(pool[:per_class_val])
        train_idx.extend(pool[per_class_val:])
    return subset.subset(np.array(train_idx)), subset.subset(np.array(val_idx))
