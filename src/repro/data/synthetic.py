"""Synthetic image classification datasets.

The paper evaluates on CIFAR-10 and GTSRB.  Neither can be downloaded in
this offline environment, so we generate procedural stand-ins (DESIGN.md §2):

``SynthCIFAR``
    10 classes of textured natural-image-like 32x32 RGB fields.  Each class
    owns a small bank of smooth random prototypes (low-frequency Fourier
    fields with a class-specific palette); a sample is a randomly chosen
    prototype under a random circular shift, optional horizontal flip,
    brightness/contrast jitter, and pixel noise.

``SynthGTSRB``
    Traffic-sign-like classes: a colored geometric glyph (disc, triangle,
    square, diamond, ring, ...) with class-keyed colors and an inner marking,
    on a cluttered background, under the same augmentations (no flip — signs
    are chiral).

What matters for backdoor research is preserved: the clean task is learnable
(>90 % test accuracy with the quick-profile models), samples have intra-class
variation, and triggers embed exactly as in the paper (pixel patches, blends,
frequency-domain perturbations, quantization).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .dataset import ImageDataset

__all__ = ["make_synth_cifar", "make_synth_gtsrb", "SynthSpec"]


class SynthSpec:
    """Bundled configuration for a synthetic dataset build."""

    def __init__(
        self,
        num_classes: int,
        image_size: int = 32,
        prototypes_per_class: int = 3,
        noise_std: float = 0.04,
        max_shift: int = 3,
        allow_flip: bool = True,
    ) -> None:
        self.num_classes = num_classes
        self.image_size = image_size
        self.prototypes_per_class = prototypes_per_class
        self.noise_std = noise_std
        self.max_shift = max_shift
        self.allow_flip = allow_flip


def _smooth_field(rng: np.random.Generator, size: int, cutoff: int = 5) -> np.ndarray:
    """Low-frequency random field in [0, 1], shape (size, size)."""
    spectrum = np.zeros((size, size), dtype=np.complex128)
    for u in range(-cutoff, cutoff + 1):
        for v in range(-cutoff, cutoff + 1):
            amplitude = rng.normal() / (1.0 + u * u + v * v)
            phase = rng.uniform(0, 2 * np.pi)
            spectrum[u % size, v % size] = amplitude * np.exp(1j * phase)
    field = np.fft.ifft2(spectrum).real
    field = field - field.min()
    peak = field.max()
    if peak > 0:
        field = field / peak
    return field


def _cifar_prototype(rng: np.random.Generator, size: int) -> np.ndarray:
    """One class prototype: three correlated smooth fields with a palette."""
    base = _smooth_field(rng, size)
    palette = rng.uniform(0.2, 1.0, size=(3,))
    offsets = rng.uniform(-0.15, 0.15, size=(3,))
    channels = []
    for c in range(3):
        detail = _smooth_field(rng, size, cutoff=7)
        channel = np.clip(palette[c] * (0.7 * base + 0.3 * detail) + offsets[c], 0.0, 1.0)
        channels.append(channel)
    return np.stack(channels).astype(np.float32)


def _glyph_mask(shape_id: int, size: int) -> np.ndarray:
    """Binary mask of a sign glyph centred in a (size, size) canvas."""
    yy, xx = np.mgrid[0:size, 0:size]
    cy = cx = (size - 1) / 2.0
    r = size * 0.38
    if shape_id == 0:  # disc
        return ((yy - cy) ** 2 + (xx - cx) ** 2 <= r * r).astype(np.float32)
    if shape_id == 1:  # upward triangle
        return ((yy - cy) >= -r) & ((yy - cy) <= r) & (
            np.abs(xx - cx) <= (yy - cy + r) * 0.5
        )
    if shape_id == 2:  # square
        return (np.abs(yy - cy) <= r * 0.85) & (np.abs(xx - cx) <= r * 0.85)
    if shape_id == 3:  # diamond
        return (np.abs(yy - cy) + np.abs(xx - cx)) <= r * 1.2
    if shape_id == 4:  # ring
        d2 = (yy - cy) ** 2 + (xx - cx) ** 2
        return (d2 <= r * r) & (d2 >= (r * 0.55) ** 2)
    if shape_id == 5:  # downward triangle
        return ((yy - cy) >= -r) & ((yy - cy) <= r) & (
            np.abs(xx - cx) <= (r - (yy - cy)) * 0.5
        )
    if shape_id == 6:  # horizontal bar
        return (np.abs(yy - cy) <= r * 0.4) & (np.abs(xx - cx) <= r)
    # vertical bar
    return (np.abs(yy - cy) <= r) & (np.abs(xx - cx) <= r * 0.4)


def _gtsrb_prototype(rng: np.random.Generator, size: int, class_index: int) -> np.ndarray:
    """Sign-like prototype: glyph + inner marking on a cluttered background."""
    background = np.stack([_smooth_field(rng, size, cutoff=4) * 0.5 for _ in range(3)])
    shape_id = class_index % 8
    mask = _glyph_mask(shape_id, size).astype(np.float32)
    sign_color = rng.uniform(0.4, 1.0, size=(3,))
    # Class-keyed hue rotation so same-shape classes still differ.
    roll = (class_index // 8) % 3
    sign_color = np.roll(sign_color, roll)
    image = background.copy()
    for c in range(3):
        image[c] = image[c] * (1 - mask) + sign_color[c] * mask
    # Inner marking: a smaller contrasting glyph.
    inner = _glyph_mask((shape_id + 3) % 8, size).astype(np.float32)
    shrink = inner * mask
    inner_color = 1.0 - sign_color
    for c in range(3):
        image[c] = image[c] * (1 - 0.8 * shrink) + inner_color[c] * 0.8 * shrink
    return np.clip(image, 0.0, 1.0).astype(np.float32)


def _augment(
    prototype: np.ndarray, rng: np.random.Generator, spec: SynthSpec
) -> np.ndarray:
    """Apply shift / flip / photometric jitter / noise to a prototype."""
    image = prototype
    if spec.max_shift:
        dy, dx = rng.integers(-spec.max_shift, spec.max_shift + 1, size=2)
        image = np.roll(image, (int(dy), int(dx)), axis=(1, 2))
    if spec.allow_flip and rng.random() < 0.5:
        image = image[:, :, ::-1]
    brightness = rng.uniform(-0.1, 0.1)
    contrast = rng.uniform(0.85, 1.15)
    image = (image - 0.5) * contrast + 0.5 + brightness
    image = image + rng.normal(0.0, spec.noise_std, size=image.shape)
    return np.clip(image, 0.0, 1.0).astype(np.float32)


def _build(
    n_train: int,
    n_test: int,
    spec: SynthSpec,
    seed: int,
    prototype_fn,
) -> Tuple[ImageDataset, ImageDataset]:
    proto_rng = np.random.default_rng(seed)
    prototypes = {
        cls: [
            prototype_fn(proto_rng, spec.image_size, cls)
            for _ in range(spec.prototypes_per_class)
        ]
        for cls in range(spec.num_classes)
    }

    def sample_split(n: int, rng: np.random.Generator) -> ImageDataset:
        labels = np.arange(n) % spec.num_classes
        rng.shuffle(labels)
        images = np.empty((n, 3, spec.image_size, spec.image_size), dtype=np.float32)
        for i, cls in enumerate(labels):
            proto = prototypes[int(cls)][rng.integers(spec.prototypes_per_class)]
            images[i] = _augment(proto, rng, spec)
        return ImageDataset(images, labels)

    train = sample_split(n_train, np.random.default_rng(seed + 1))
    test = sample_split(n_test, np.random.default_rng(seed + 2))
    return train, test


def make_synth_cifar(
    n_train: int = 2000,
    n_test: int = 500,
    num_classes: int = 10,
    image_size: int = 32,
    seed: int = 0,
) -> Tuple[ImageDataset, ImageDataset]:
    """Build the SynthCIFAR train/test pair (natural-texture-like classes)."""
    spec = SynthSpec(num_classes=num_classes, image_size=image_size, allow_flip=True)

    def proto(rng: np.random.Generator, size: int, _cls: int) -> np.ndarray:
        return _cifar_prototype(rng, size)

    return _build(n_train, n_test, spec, seed, proto)


def make_synth_gtsrb(
    n_train: int = 2000,
    n_test: int = 500,
    num_classes: int = 12,
    image_size: int = 32,
    seed: int = 0,
) -> Tuple[ImageDataset, ImageDataset]:
    """Build the SynthGTSRB train/test pair (traffic-sign-like classes).

    GTSRB has 43 classes; the quick profile defaults to 12 (all eight glyph
    shapes plus hue-rotated repeats) to keep CPU runtimes short.  Pass
    ``num_classes=43`` for the full-width variant.
    """
    spec = SynthSpec(
        num_classes=num_classes, image_size=image_size, allow_flip=False, noise_std=0.05
    )
    return _build(n_train, n_test, spec, seed, _gtsrb_prototype)
