"""``repro.serving`` — the defense-serving gateway (``repro serve``).

Turns the repaired-model fast path, the tiled GEMM engine, and STRIP input
filtering into a long-lived serving process: a content-addressed model
registry with atomic hot-swap, an async micro-batching request queue, an
optional per-batch STRIP pre-filter, a synthetic traffic generator, and a
stdlib HTTP front.  See DESIGN.md §11.
"""

from .batcher import BatcherStats, BatchRequest, MicroBatcher, QueueFullError
from .gateway import CLEAN, FILTERED, ServeConfig, ServingGateway, Verdict
from .http import GatewayHTTPServer, serve_http
from .registry import ModelRegistry, RegisteredModel, state_fingerprint
from .traffic import STANDARD_MIXES, TrafficGenerator, TrafficMix, TrafficReport

__all__ = [
    "CLEAN",
    "FILTERED",
    "STANDARD_MIXES",
    "BatchRequest",
    "BatcherStats",
    "GatewayHTTPServer",
    "MicroBatcher",
    "ModelRegistry",
    "QueueFullError",
    "RegisteredModel",
    "ServeConfig",
    "ServingGateway",
    "TrafficGenerator",
    "TrafficMix",
    "TrafficReport",
    "Verdict",
    "serve_http",
    "state_fingerprint",
]
