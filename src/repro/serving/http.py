"""Minimal stdlib HTTP front for the serving gateway.

A thin JSON-over-HTTP adapter so the gateway can be poked with ``curl``
(see the README "Serving" section).  Endpoints:

- ``POST /predict`` — body ``{"image": [[[...]]]}`` (one ``(C, H, W)``
  nested list); responds with the :class:`~repro.serving.gateway.Verdict`
  as JSON.
- ``POST /swap`` — body ``{"key": "model-..."}`` or ``{}`` to re-resolve
  the gateway's alias; responds ``{"swapped": bool, "model_key": ...}``.
- ``GET /healthz`` — liveness + active checkpoint key.
- ``GET /stats`` — the gateway's live telemetry.

Built on :class:`http.server.ThreadingHTTPServer`: each connection gets a
handler thread that parks on the request future while the micro-batcher
aggregates across connections — concurrency comes from the batcher, not
from the HTTP layer.  This is a demo/ops surface, not a hardened proxy;
put a real terminator in front of it for anything internet-facing.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

import numpy as np

from ..utils.logging import get_logger
from .batcher import QueueFullError
from .gateway import ServingGateway

__all__ = ["GatewayHTTPServer", "serve_http"]

_LOG = get_logger("repro.serving.http")


class _Handler(BaseHTTPRequestHandler):
    gateway: ServingGateway  # set on the per-server subclass
    request_timeout_s: float = 30.0

    # Quiet the default per-request stderr lines; the gateway logs instead.
    def log_message(self, format, *args):  # noqa: A002 — stdlib signature
        pass

    def _reply(self, status: int, payload: dict, headers: Optional[dict] = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            doc = json.loads(raw or b"{}")
        except json.JSONDecodeError:
            self._reply(400, {"error": "body is not valid JSON"})
            return None
        if not isinstance(doc, dict):
            self._reply(400, {"error": "body must be a JSON object"})
            return None
        return doc

    def do_GET(self) -> None:  # noqa: N802 — stdlib casing
        if self.path == "/healthz":
            self._reply(200, {"status": "ok", "model_key": self.gateway.active_key})
        elif self.path == "/stats":
            self._reply(200, self.gateway.stats())
        else:
            self._reply(404, {"error": f"unknown path {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 — stdlib casing
        doc = self._read_json()
        if doc is None:
            return
        if self.path == "/predict":
            self._predict(doc)
        elif self.path == "/swap":
            self._swap(doc)
        else:
            self._reply(404, {"error": f"unknown path {self.path}"})

    def _predict(self, doc: dict) -> None:
        if "image" not in doc:
            self._reply(400, {"error": "missing 'image'"})
            return
        try:
            image = np.asarray(doc["image"], dtype=np.float32)
            verdict = self.gateway.classify(image, timeout=self.request_timeout_s)
        except QueueFullError as exc:
            # Explicit overload response: clients back off instead of
            # piling latency onto an already-saturated queue.
            retry_after = max(1, int(round(exc.retry_after_s + 0.5)))
            self._reply(
                503,
                {"error": str(exc), "retry_after_s": exc.retry_after_s},
                headers={"Retry-After": str(retry_after)},
            )
            return
        except (ValueError, RuntimeError) as exc:
            self._reply(400, {"error": str(exc)})
            return
        self._reply(200, verdict.to_json())

    def _swap(self, doc: dict) -> None:
        try:
            swapped = self.gateway.swap(doc.get("key"))
        except KeyError as exc:
            self._reply(404, {"error": str(exc)})
            return
        self._reply(200, {"swapped": swapped, "model_key": self.gateway.active_key})


class GatewayHTTPServer:
    """Owns the ThreadingHTTPServer and its serve thread."""

    def __init__(self, gateway: ServingGateway, host: str = "127.0.0.1", port: int = 0) -> None:
        handler = type("BoundHandler", (_Handler,), {"gateway": gateway})
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address[:2]

    def start(self) -> "GatewayHTTPServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="serve-http", daemon=True
        )
        self._thread.start()
        _LOG.info("http front listening on %s:%d", *self.address)
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)


def serve_http(gateway: ServingGateway, host: str = "127.0.0.1", port: int = 0) -> GatewayHTTPServer:
    """Start an HTTP front for ``gateway``; returns the running server."""
    return GatewayHTTPServer(gateway, host=host, port=port).start()
