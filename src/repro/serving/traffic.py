"""Synthetic traffic generation for the serving gateway.

Three canonical mixes drive ``BENCH_serving.json`` and the soak tests:

- **steady**: open-loop arrivals at a constant rate — the micro-batcher
  should settle into mid-size batches with few deadline flushes;
- **bursty**: arrivals in bursts separated by gaps longer than the flush
  deadline — exercises both the size trigger (inside a burst) and the
  deadline trigger (the burst remainder must not wait for the next burst);
- **adversarial**: a fraction of requests carry a backdoor trigger
  (``attack.apply``) — with STRIP enabled the report scores the gateway's
  verdicts against ground truth.

The generator is deterministic given its seed: images are drawn (with
replacement) from a fixed clean pool, trigger assignment and arrival
jitter come from one ``default_rng`` stream.  ``rate=0`` means closed-loop
"as fast as accepted", which is what the throughput benches want.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..utils.logging import get_logger
from ..utils.timing import latency_summary
from .gateway import FILTERED, ServingGateway, Verdict

__all__ = ["TrafficMix", "TrafficReport", "TrafficGenerator", "STANDARD_MIXES"]

_LOG = get_logger("repro.serving.traffic")


@dataclass(frozen=True)
class TrafficMix:
    """One named traffic pattern.

    ``rate`` is the mean arrival rate in requests/second (0 = closed loop,
    no pacing).  ``burst_size > 1`` groups arrivals into back-to-back
    bursts with ``gap_s`` of silence between them.  ``trigger_fraction``
    of requests carry the attack trigger (requires the generator to be
    built with an attack).
    """

    name: str
    num_requests: int
    rate: float = 0.0
    burst_size: int = 1
    gap_s: float = 0.0
    trigger_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.num_requests < 1:
            raise ValueError("num_requests must be >= 1")
        if not 0.0 <= self.trigger_fraction <= 1.0:
            raise ValueError("trigger_fraction must be in [0, 1]")
        if self.burst_size < 1:
            raise ValueError("burst_size must be >= 1")


STANDARD_MIXES: Tuple[TrafficMix, ...] = (
    TrafficMix(name="steady", num_requests=96, rate=0.0),
    TrafficMix(name="bursty", num_requests=96, rate=0.0, burst_size=24, gap_s=0.05),
    TrafficMix(name="adversarial", num_requests=96, rate=0.0, trigger_fraction=0.25),
)


@dataclass
class TrafficReport:
    """Everything a mix run produced, plus derived summaries."""

    mix: TrafficMix
    wall_s: float
    verdicts: List[Verdict] = field(default_factory=list)
    triggered: List[bool] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return len(self.verdicts)

    @property
    def images_per_sec(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    def latency_ms_summary(self) -> Dict[str, float]:
        return latency_summary([v.latency_ms for v in self.verdicts])

    def batch_size_histogram(self) -> Dict[int, int]:
        histogram: Dict[int, int] = {}
        for verdict in self.verdicts:
            histogram[verdict.batch_size] = histogram.get(verdict.batch_size, 0) + 1
        return histogram

    def verdict_confusion(self) -> Dict[str, int]:
        """Flagging outcomes vs ground truth (adversarial mixes)."""
        confusion = {"triggered_flagged": 0, "triggered_passed": 0,
                     "clean_flagged": 0, "clean_passed": 0}
        for verdict, was_triggered in zip(self.verdicts, self.triggered):
            flagged = verdict.verdict == FILTERED
            if was_triggered:
                confusion["triggered_flagged" if flagged else "triggered_passed"] += 1
            else:
                confusion["clean_flagged" if flagged else "clean_passed"] += 1
        return confusion

    def summary(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "mix": self.mix.name,
            "requests": self.mix.num_requests,
            "completed": self.completed,
            "wall_s": self.wall_s,
            "images_per_sec": self.images_per_sec,
            "latency_ms": self.latency_ms_summary(),
            "batch_size_histogram": self.batch_size_histogram(),
        }
        if self.mix.trigger_fraction > 0:
            payload["verdict_confusion"] = self.verdict_confusion()
        return payload


class TrafficGenerator:
    """Deterministic request source driving a :class:`ServingGateway`.

    Parameters
    ----------
    clean_images:
        ``(P, C, H, W)`` pool requests are sampled from.
    attack:
        Optional :class:`~repro.attacks.base.BackdoorAttack` supplying the
        trigger for adversarial mixes.
    """

    def __init__(
        self,
        clean_images: np.ndarray,
        attack=None,
        seed: int = 0,
    ) -> None:
        if len(clean_images) == 0:
            raise ValueError("traffic needs a non-empty clean image pool")
        self.clean_images = np.asarray(clean_images, dtype=np.float32)
        self.attack = attack
        self.seed = seed

    def requests(self, mix: TrafficMix) -> List[Tuple[np.ndarray, bool]]:
        """Materialize the request list: ``(image, is_triggered)`` pairs."""
        if mix.trigger_fraction > 0 and self.attack is None:
            raise ValueError(f"mix {mix.name!r} needs an attack for triggered traffic")
        rng = np.random.default_rng(self.seed)
        picks = rng.integers(0, len(self.clean_images), size=mix.num_requests)
        triggered = rng.random(mix.num_requests) < mix.trigger_fraction
        images = self.clean_images[picks]
        if triggered.any():
            images = images.copy()
            images[triggered] = self.attack.apply(images[triggered])
        return [(images[i], bool(triggered[i])) for i in range(mix.num_requests)]

    def run(
        self,
        gateway: ServingGateway,
        mix: TrafficMix,
        result_timeout_s: float = 60.0,
    ) -> TrafficReport:
        """Submit the mix open-loop, wait for every verdict, report.

        Arrival pacing: at ``rate > 0``, inter-arrival sleeps of
        ``1 / rate`` seconds (per burst when ``burst_size > 1``); bursts
        additionally sleep ``gap_s`` between groups.  Every submitted
        future is awaited with a hard per-request timeout so a wedged
        queue surfaces as a test failure, not a hang.
        """
        requests = self.requests(mix)
        futures = []
        start = time.perf_counter()
        for i, (image, _) in enumerate(requests):
            futures.append(gateway.submit(image))
            boundary = (i + 1) % mix.burst_size == 0
            if mix.rate > 0 and boundary:
                time.sleep(mix.burst_size / mix.rate)
            if mix.gap_s > 0 and boundary and i + 1 < len(requests):
                time.sleep(mix.gap_s)
        verdicts = [future.result(timeout=result_timeout_s) for future in futures]
        wall_s = time.perf_counter() - start
        report = TrafficReport(
            mix=mix,
            wall_s=wall_s,
            verdicts=verdicts,
            triggered=[t for _, t in requests],
        )
        _LOG.info(
            "mix %s: %d requests in %.3fs (%.1f img/s)",
            mix.name, report.completed, wall_s, report.images_per_sec,
        )
        return report
