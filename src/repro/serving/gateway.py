"""Long-lived defense-serving gateway: registry + micro-batcher + STRIP.

The end product of the paper's pipeline is a *repaired* model that still has
to serve predictions.  :class:`ServingGateway` composes the repo's pieces
into that deployable form:

- checkpoints come from a :class:`~repro.serving.registry.ModelRegistry`
  (content-addressed, atomically aliased);
- every checkpoint is folded through
  :class:`~repro.nn.inference.CompiledInference` (conv–BN folding, fused
  ReLU epilogue, planned arena) and **warmed off the request path** before
  it serves a single request;
- requests stream through a :class:`~repro.serving.batcher.MicroBatcher`,
  so single-image callers ride the batched channels-last single-GEMM path
  and the tiled engine instead of the batch-1 slow path;
- an optional **STRIP pre-filter** (Gao et al., 2019) shares the same
  micro-batches: each batch is blended against a clean pool and scored in
  one stacked forward (:func:`~repro.synthesis.strip.strip_entropy_scores`),
  yielding a per-request ``clean`` / ``filtered-as-triggered`` verdict next
  to the label.

Hot-swap protocol (zero dropped requests):

1. ``swap()`` resolves the alias (or takes an explicit key) and *prepares*
   the replacement entirely off-path: load, fold, warm, and — when STRIP is
   on — recalibrate the entropy threshold against the new model.
2. The prepared entry is installed under the model lock, which the drain
   thread also takes per batch.  In-flight batches finish on the old model;
   the next batch runs folded on the new one.  Requests queued during the
   swap are never rejected, reordered, or dropped.
3. The old compiled view is discarded whole; there is no shared folded
   state to invalidate across entries (each checkpoint gets a fresh
   ``CompiledInference``), so a stale cache cannot leak across a swap.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..data.dataset import ImageDataset
from ..nn.engine import engine
from ..nn.inference import CompiledInference
from ..nn.tensor import Tensor
from ..synthesis.strip import strip_entropy_scores
from ..telemetry import bus, emit
from ..utils.logging import get_logger
from ..utils.timing import latency_summary
from .batcher import BatchRequest, MicroBatcher
from .registry import ModelRegistry

__all__ = ["ServingGateway", "ServeConfig", "Verdict", "CLEAN", "FILTERED"]

_LOG = get_logger("repro.serving.gateway")

_SOURCE = "serving.gateway"

CLEAN = "clean"
FILTERED = "filtered-as-triggered"


@dataclass(frozen=True)
class ServeConfig:
    """Gateway tuning knobs (see DESIGN.md §11)."""

    max_batch: int = 32
    max_wait_ms: float = 5.0
    # Admission control: bound on accepted-but-unresolved requests; a
    # submit over the bound raises QueueFullError (HTTP: 503 + Retry-After).
    max_queue: int = 1024
    strip: bool = False
    strip_overlays: int = 8
    strip_alpha: float = 0.5
    strip_fpr: float = 0.05
    latency_window: int = 2048  # recent per-request latencies kept for stats
    seed: int = 0


@dataclass
class Verdict:
    """Per-request serving result (the gateway's response schema)."""

    label: int
    verdict: str  # CLEAN or FILTERED
    entropy: Optional[float]
    model_key: str
    batch_size: int
    queued_ms: float
    latency_ms: float

    def to_json(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass
class _ActiveEntry:
    """The currently-served checkpoint and its prepared serving state."""

    key: str
    compiled: CompiledInference
    strip_threshold: Optional[float] = None
    manifest: Dict[str, Any] = field(default_factory=dict)


class ServingGateway:
    """Micro-batched, hot-swappable inference gateway with STRIP filtering.

    Parameters
    ----------
    registry:
        Source of checkpoints.
    alias:
        Registry alias this gateway follows; ``swap()`` with no argument
        re-resolves it.
    config:
        Batching/filtering knobs.
    clean_pool:
        Clean images for STRIP blending and threshold calibration; required
        when ``config.strip`` is on.
    """

    def __init__(
        self,
        registry: ModelRegistry,
        alias: str = "default",
        config: Optional[ServeConfig] = None,
        clean_pool: Optional[ImageDataset] = None,
    ) -> None:
        self.registry = registry
        self.alias = alias
        self.config = config or ServeConfig()
        if self.config.strip and clean_pool is None:
            raise ValueError("STRIP filtering needs a clean_pool to blend with")
        self.clean_pool = clean_pool
        self._rng = np.random.default_rng(self.config.seed)
        self._model_lock = threading.Lock()
        self._active: Optional[_ActiveEntry] = None
        self._batcher: Optional[MicroBatcher] = None
        self._example: Optional[np.ndarray] = None
        self._latencies: deque = deque(maxlen=self.config.latency_window)
        self._served = 0
        self._filtered = 0
        self._swaps = 0
        self._started_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServingGateway":
        """Resolve the alias, prepare the checkpoint, start draining."""
        if self._batcher is not None:
            raise RuntimeError("gateway already started")
        entry = self._prepare(self._resolve_alias())
        with self._model_lock:
            self._active = entry
        self._batcher = MicroBatcher(
            self._process_batch,
            max_batch=self.config.max_batch,
            max_wait_ms=self.config.max_wait_ms,
            max_queue=self.config.max_queue,
            name=f"serve-{self.alias}",
        ).start()
        self._started_at = time.perf_counter()
        _LOG.info("serving %s (alias=%s, strip=%s)", entry.key, self.alias, self.config.strip)
        emit(
            "serving_started", _SOURCE,
            alias=self.alias, model_key=entry.key, strip=self.config.strip,
            max_batch=self.config.max_batch, max_queue=self.config.max_queue,
        )
        return self

    def stop(self, timeout: Optional[float] = 30.0) -> None:
        """Drain the queue (every accepted request resolves), then stop."""
        if self._batcher is not None:
            self._batcher.close(timeout=timeout)
            emit("serving_stopped", _SOURCE, alias=self.alias, served=self._served)

    def __enter__(self) -> "ServingGateway":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(self, image: np.ndarray) -> "Future":
        """Queue one ``(C, H, W)`` image; future resolves to a :class:`Verdict`."""
        if self._batcher is None:
            raise RuntimeError("gateway not started")
        image = np.asarray(image, dtype=np.float32)
        if image.ndim == 4 and image.shape[0] == 1:
            image = image[0]
        if image.ndim != 3:
            raise ValueError(f"expected one (C, H, W) image, got shape {image.shape}")
        return self._batcher.submit(image)

    def classify(self, image: np.ndarray, timeout: Optional[float] = 30.0) -> Verdict:
        """Synchronous convenience wrapper around :meth:`submit`."""
        return self.submit(image).result(timeout=timeout)

    # ------------------------------------------------------------------
    # Hot-swap
    # ------------------------------------------------------------------
    def swap(self, key: Optional[str] = None) -> bool:
        """Install a checkpoint with zero dropped requests.

        ``key=None`` re-resolves the gateway's alias.  Returns True when a
        new checkpoint was installed, False when already serving it.  All
        preparation (load, fold, warm, STRIP recalibration) happens before
        the model lock is taken, so the request path is only paused for a
        pointer assignment.
        """
        key = key if key is not None else self._resolve_alias()
        current = self._active
        if current is not None and current.key == key:
            return False
        entry = self._prepare(key)
        with self._model_lock:
            previous, self._active = self._active, entry
            self._swaps += 1
        _LOG.info("hot-swapped %s -> %s", previous.key if previous else None, entry.key)
        bus().metrics.counter("serving.swaps").inc()
        emit(
            "swap", _SOURCE,
            alias=self.alias, previous=previous.key if previous else None,
            model_key=entry.key,
        )
        return True

    @property
    def active_key(self) -> Optional[str]:
        entry = self._active
        return entry.key if entry is not None else None

    def _resolve_alias(self) -> str:
        key = self.registry.resolve(self.alias)
        if key is None:
            raise KeyError(f"registry has no checkpoint under alias {self.alias!r}")
        return key

    def _prepare(self, key: str) -> _ActiveEntry:
        """Load + fold + warm + (optionally) calibrate, off the request path."""
        registered = self.registry.load(key)
        example = self._example_input(registered.manifest)
        compiled = CompiledInference(registered.model, Tensor(example[:1]))
        # Warm under the model lock: the drain thread may be mid-batch on
        # the old model, and the tiled engine serializes per thread.
        with self._model_lock:
            compiled.warmup(Tensor(example))
        threshold = None
        if self.config.strip:
            threshold = self._calibrate_strip(compiled)
        return _ActiveEntry(
            key=registered.key,
            compiled=compiled,
            strip_threshold=threshold,
            manifest=registered.manifest,
        )

    def _example_input(self, manifest: Dict[str, Any]) -> np.ndarray:
        if self._example is None:
            if self.clean_pool is not None and len(self.clean_pool):
                shape = self.clean_pool.images.shape[1:]
            else:
                manifest_shape = manifest.get("metadata", {}).get("image_shape")
                shape = tuple(manifest_shape) if manifest_shape else (3, 32, 32)
            batch = min(self.config.max_batch, 8)
            self._example = np.zeros((batch, *shape), dtype=np.float32)
        return self._example

    def _calibrate_strip(self, compiled: CompiledInference) -> float:
        """Entropy threshold at the configured clean false-positive rate.

        Calibration is per-checkpoint: the same clean pool yields different
        entropy distributions under different weights, so the threshold is
        recomputed on every swap (off-path, like the rest of preparation).
        Uses the same shared-overlay form as serving so the calibrated
        threshold matches the on-path entropy distribution.
        """
        pool = self.clean_pool.images
        overlay_idx = self._rng.integers(0, len(pool), size=self.config.strip_overlays)
        with self._model_lock:
            scores = strip_entropy_scores(
                compiled, pool, pool, overlay_idx, self.config.strip_alpha
            )
        return float(np.quantile(scores, self.config.strip_fpr))

    # ------------------------------------------------------------------
    # Batch execution (drain thread)
    # ------------------------------------------------------------------
    def _process_batch(self, requests: List[BatchRequest]) -> None:
        batch = np.stack([r.payload for r in requests]).astype(np.float32, copy=False)
        start = time.perf_counter()
        with self._model_lock:
            entry = self._active
            logits = entry.compiled(Tensor(batch)).data
            entropies: Optional[np.ndarray] = None
            if entry.strip_threshold is not None:
                pool = self.clean_pool.images
                # One shared overlay set per micro-batch: a single
                # (overlays, C, H, W) gather instead of an (overlays, batch)
                # index table, so the blend broadcasts instead of fancy-
                # indexing overlays * batch pool rows.
                overlay_idx = self._rng.integers(0, len(pool), size=self.config.strip_overlays)
                entropies = strip_entropy_scores(
                    entry.compiled, batch, pool, overlay_idx, self.config.strip_alpha
                )
        elapsed_ms = (time.perf_counter() - start) * 1e3
        labels = logits.argmax(axis=-1)
        flagged = (
            entropies < entry.strip_threshold
            if entropies is not None
            else np.zeros(len(batch), dtype=bool)
        )
        for i, request in enumerate(requests):
            verdict = Verdict(
                label=int(labels[i]),
                verdict=FILTERED if flagged[i] else CLEAN,
                entropy=float(entropies[i]) if entropies is not None else None,
                model_key=entry.key,
                batch_size=len(batch),
                queued_ms=request.queued_ms,
                latency_ms=request.queued_ms + elapsed_ms,
            )
            request.future.set_result(verdict)
        self._latencies.extend(r.queued_ms + elapsed_ms for r in requests)
        self._served += len(requests)
        self._filtered += int(flagged.sum())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Live serving telemetry (shares percentile code with the benches)."""
        uptime = (
            time.perf_counter() - self._started_at if self._started_at is not None else 0.0
        )
        payload: Dict[str, Any] = {
            "alias": self.alias,
            "model_key": self.active_key,
            "strip": self.config.strip,
            "served": self._served,
            "filtered": self._filtered,
            "swaps": self._swaps,
            "uptime_s": uptime,
            "throughput_per_s": (self._served / uptime) if uptime > 0 else 0.0,
            "latency_ms": latency_summary(list(self._latencies)),
            "engine_totals": dict(engine().totals),
        }
        if self._batcher is not None:
            payload["batcher"] = self._batcher.stats()
        payload["metrics"] = bus().metrics.snapshot()
        return payload
