"""Content-addressed model registry for the defense-serving gateway.

Repaired checkpoints are published into an :class:`~repro.orchestrator.
artifacts.ArtifactStore` under a key derived from the checkpoint's own
content — the architecture, its build kwargs, and a digest of every
parameter/buffer array — so publishing the same repaired model twice is
idempotent and two registries on the same directory agree about identity
without coordination.

Mutable *aliases* (``"default"``, ``"canary"``, …) map serve names to
checkpoint keys through small JSON pointer documents in the same store.
``put_json`` is atomic and, since the seal-before-publish protocol (see the
artifacts module), safe against concurrent readers: a gateway polling
:meth:`ModelRegistry.resolve` during a publish sees either the old or the
new pointer, never a torn one.  That property is what makes zero-downtime
hot-swap a pure data-plane concern for the gateway.

The registry is model-zoo agnostic: checkpoints record the factory *name*
plus kwargs, and :meth:`load` rebuilds through a caller-supplied factory
(default: :func:`repro.models.build_model`), so tests can register tiny
fixture architectures without touching the real zoo.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

import numpy as np

from ..models import build_model
from ..orchestrator.artifacts import ArtifactStore, content_hash
from ..utils.logging import get_logger

__all__ = ["ModelRegistry", "RegisteredModel", "state_fingerprint"]

_LOG = get_logger("repro.serving.registry")


def state_fingerprint(state: Dict[str, np.ndarray]) -> str:
    """Order-independent sha256 over a state dict's names, shapes, and bytes."""
    digest = hashlib.sha256()
    for name in sorted(state):
        array = np.ascontiguousarray(state[name])
        digest.update(name.encode())
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


@dataclass
class RegisteredModel:
    """A checkpoint loaded back out of the registry, ready to serve."""

    key: str
    model: Any  # repro.nn.Module
    manifest: Dict[str, Any] = field(default_factory=dict)


class ModelRegistry:
    """Publish / resolve / load serving checkpoints over an artifact store.

    Parameters
    ----------
    root_or_store:
        Directory path or an existing :class:`ArtifactStore`.
    factory:
        ``factory(arch, **kwargs) -> Module`` used by :meth:`load`.
    """

    def __init__(
        self,
        root_or_store,
        factory: Callable[..., Any] = None,
    ) -> None:
        if isinstance(root_or_store, ArtifactStore):
            self.store = root_or_store
        else:
            self.store = ArtifactStore(str(root_or_store))
        self.factory = factory if factory is not None else build_model


    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def publish(
        self,
        model,
        arch: str,
        *,
        alias: Optional[str] = "default",
        factory_kwargs: Optional[Dict[str, Any]] = None,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Store a checkpoint; returns its content key.

        ``model`` is a module (``state_dict()`` is taken) or a state dict.
        When ``alias`` is not None the alias pointer is atomically advanced
        to the new key — a serving gateway watching that alias will pick the
        checkpoint up on its next :meth:`resolve`/swap.
        """
        state = model if isinstance(model, dict) else model.state_dict()
        kwargs = dict(factory_kwargs or {})
        key = "model-" + content_hash(
            {"arch": arch, "kwargs": kwargs, "state": state_fingerprint(state)}
        )[:24]
        manifest = {
            "arch": arch,
            "factory_kwargs": kwargs,
            "state_fingerprint": state_fingerprint(state),
            "num_arrays": len(state),
            "metadata": dict(metadata or {}),
            "published_at": time.time(),
        }
        if not self.store.has(key, ".npz"):
            self.store.put_state(key, {k: np.asarray(v) for k, v in state.items()})
        self.store.put_json(key, manifest)
        if alias is not None:
            self.set_alias(alias, key)
        _LOG.info("published %s (arch=%s, alias=%s)", key, arch, alias)
        return key

    def set_alias(self, alias: str, key: str) -> None:
        """Atomically point ``alias`` at ``key`` (key must exist)."""
        if not self.store.has(key, ".npz"):
            raise KeyError(f"cannot alias unknown checkpoint {key!r}")
        self.store.put_json(self._alias_key(alias), {"key": key, "updated_at": time.time()})

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @staticmethod
    def _alias_key(alias: str) -> str:
        return f"alias-{alias}"

    def resolve(self, alias: str) -> Optional[str]:
        """Checkpoint key an alias currently points at (None if unset)."""
        doc = self.store.get_json(self._alias_key(alias))
        return doc["key"] if doc else None

    def manifest(self, key: str) -> Optional[Dict[str, Any]]:
        return self.store.get_json(key)

    def keys(self) -> List[str]:
        """All checkpoint keys present in the backing store."""
        names = set()
        for entry in os.listdir(self.store.root):
            if entry.startswith("model-") and entry.endswith(".npz"):
                names.add(entry[: -len(".npz")])
        return sorted(names)

    def aliases(self) -> Dict[str, str]:
        """``alias -> checkpoint key`` for every alias pointer in the store."""
        pointers: Dict[str, str] = {}
        for entry in os.listdir(self.store.root):
            if not (entry.startswith("alias-") and entry.endswith(".json")):
                continue
            alias = entry[len("alias-") : -len(".json")]
            doc = self.store.get_json(self._alias_key(alias))
            if doc and "key" in doc:
                pointers[alias] = doc["key"]
        return pointers

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def gc(
        self,
        dry_run: bool = False,
        keep: Iterable[str] = (),
    ) -> Dict[str, Any]:
        """Remove checkpoints no alias points at (``repro registry gc``).

        A checkpoint survives when an alias resolves to it or its key is
        in ``keep`` (exact keys or unambiguous prefixes).  ``dry_run``
        reports what *would* be removed without touching the store.
        Returns ``{"removed": [...], "kept": [...], "freed_bytes": int,
        "dry_run": bool}``.
        """
        aliased = set(self.aliases().values())
        keep = tuple(keep)
        removed: List[str] = []
        kept: List[str] = []
        freed = 0
        for key in self.keys():
            pinned = key in aliased or any(
                key == pin or key.startswith(pin) for pin in keep
            )
            if pinned:
                kept.append(key)
                continue
            for suffix in (".npz", ".json"):
                path = self.store.path(key, suffix)
                sidecar = path + ".sha256"
                for victim in (path, sidecar):
                    if os.path.exists(victim):
                        freed += os.path.getsize(victim)
                if not dry_run:
                    self.store.delete(key, suffix)
            removed.append(key)
        if not dry_run and removed:
            _LOG.info("registry gc removed %d checkpoints (%d bytes)", len(removed), freed)
        return {
            "removed": removed,
            "kept": kept,
            "freed_bytes": freed,
            "dry_run": dry_run,
        }

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load(self, key_or_alias: str) -> RegisteredModel:
        """Rebuild a checkpoint into a fresh eval-mode module.

        Accepts either a checkpoint key or an alias name.  Raises
        :class:`KeyError` when nothing resolvable exists (including a
        checkpoint whose artifact was dropped as corrupt — the caller
        decides whether to re-publish or fall back).
        """
        key = key_or_alias
        if not self.store.has(key, ".npz"):
            resolved = self.resolve(key_or_alias)
            if resolved is None:
                raise KeyError(f"no checkpoint or alias named {key_or_alias!r}")
            key = resolved
        manifest = self.manifest(key)
        if manifest is None:
            raise KeyError(f"checkpoint {key!r} has no manifest")
        state = self.store.get_state(key)
        if state is None:
            raise KeyError(f"checkpoint {key!r} is missing or corrupt")
        model = self.factory(manifest["arch"], **manifest.get("factory_kwargs", {}))
        model.load_state_dict(state)
        model.eval()
        return RegisteredModel(key=key, model=model, manifest=manifest)
