"""Dynamic micro-batching request queue for the serving gateway.

Single-image requests are the natural unit for callers, but the worst
possible unit for the numpy substrate: a batch-1 forward pays the full
Python/layer dispatch overhead per image and leaves the im2col GEMM too
small to tile.  The :class:`MicroBatcher` turns an open stream of requests
into batches the fast path was built for, with the classic two-trigger
flush rule:

- **size**: a batch closes the moment ``max_batch`` requests are pending;
- **deadline**: otherwise it closes when the *oldest* pending request has
  waited ``max_wait_ms`` — bounding added latency when traffic stalls below
  the batch size.

One daemon drain thread owns batch assembly and the downstream
``process_batch`` callback, so the model only ever runs on one thread and
needs no internal locking.  ``submit`` is thread-safe and wait-free (a
``queue.Queue`` put) and returns a :class:`concurrent.futures.Future`.

Shutdown is *drain-by-default*: ``close()`` refuses new submissions, lets
the drain thread flush everything already accepted (the sentinel is
enqueued strictly after every accepted request), and joins the thread — no
request accepted before ``close()`` is ever dropped.  If ``process_batch``
raises, the exception is delivered to each affected request's future
instead of killing the drain loop.

Admission control: with ``max_queue`` set, a submit that would exceed the
bound of accepted-but-unresolved requests is rejected immediately with
:class:`QueueFullError` carrying a drain-time estimate (``retry_after_s``)
— the HTTP front turns that into ``503`` + ``Retry-After`` instead of
letting latency grow without bound under overload.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import Counter
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..telemetry import bus, emit
from ..utils.logging import get_logger

__all__ = ["MicroBatcher", "BatchRequest", "BatcherStats", "QueueFullError"]

_SOURCE = "serving.batcher"


class QueueFullError(RuntimeError):
    """Raised by :meth:`MicroBatcher.submit` when admission control rejects.

    ``retry_after_s`` estimates when the queue should have drained enough
    to accept work again (what the HTTP layer advertises as
    ``Retry-After``).
    """

    def __init__(self, name: str, depth: int, limit: int, retry_after_s: float) -> None:
        super().__init__(f"{name} queue full ({depth}/{limit} requests pending)")
        self.depth = depth
        self.limit = limit
        self.retry_after_s = retry_after_s

_LOG = get_logger("repro.serving.batcher")

_STOP = object()


@dataclass
class BatchRequest:
    """One queued request: the payload plus its future and queue timestamps."""

    payload: Any
    future: Future
    enqueued_at: float
    started_at: Optional[float] = None

    @property
    def queued_ms(self) -> float:
        start = self.started_at if self.started_at is not None else time.perf_counter()
        return (start - self.enqueued_at) * 1e3


@dataclass
class BatcherStats:
    """Counters the drain thread maintains (snapshot via :meth:`MicroBatcher.stats`)."""

    submitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0  # admission-control rejections (QueueFullError)
    batches: int = 0
    batch_size_histogram: Dict[int, int] = field(default_factory=Counter)
    flush_reasons: Dict[str, int] = field(default_factory=Counter)


class MicroBatcher:
    """Queue single requests, deliver micro-batches to ``process_batch``.

    Parameters
    ----------
    process_batch:
        ``process_batch(requests: List[BatchRequest]) -> None``; must
        resolve every request's future (the batcher resolves them with the
        callback's exception if it raises).
    max_batch:
        Flush when this many requests are pending.
    max_wait_ms:
        Flush when the oldest pending request has waited this long.
    max_queue:
        Bound on accepted-but-unresolved requests; ``None`` disables
        admission control.  A submit over the bound raises
        :class:`QueueFullError` instead of queueing.
    """

    def __init__(
        self,
        process_batch: Callable[[List[BatchRequest]], None],
        max_batch: int = 32,
        max_wait_ms: float = 5.0,
        max_queue: Optional[int] = None,
        name: str = "microbatcher",
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_queue is not None and max_queue < 1:
            raise ValueError(f"max_queue must be >= 1 or None, got {max_queue}")
        self.process_batch = process_batch
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_ms) / 1e3
        self.max_queue = max_queue
        self.name = name
        self._queue: "queue.Queue" = queue.Queue()
        self._submit_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._stats = BatcherStats()
        self._inflight = 0  # accepted and not yet resolved (under _submit_lock)
        self._closed = False
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "MicroBatcher":
        if self._thread is not None:
            raise RuntimeError("batcher already started")
        self._thread = threading.Thread(target=self._drain_loop, name=self.name, daemon=True)
        self._thread.start()
        return self

    def close(self, timeout: Optional[float] = None) -> None:
        """Refuse new work, drain everything accepted, join the thread."""
        with self._submit_lock:
            if self._closed:
                thread = self._thread
                if thread is not None:
                    thread.join(timeout)
                return
            self._closed = True
            # Under the lock no submit can interleave: the sentinel lands
            # strictly after every accepted request.
            self._queue.put(_STOP)
        if self._thread is not None:
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise TimeoutError(f"{self.name} failed to drain within {timeout}s")

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, payload: Any) -> "Future":
        """Enqueue one request; resolves when its micro-batch is processed.

        Raises :class:`QueueFullError` when ``max_queue`` is set and that
        many accepted requests are still unresolved.
        """
        future: Future = Future()
        request = BatchRequest(payload=payload, future=future, enqueued_at=time.perf_counter())
        with self._submit_lock:
            if self._closed:
                raise RuntimeError(f"{self.name} is closed")
            depth = self._inflight
            if self.max_queue is not None and depth >= self.max_queue:
                overloaded = True
            else:
                overloaded = False
                self._inflight = depth + 1
                self._queue.put(request)
        if overloaded:
            # Rough drain estimate: batches ahead of us, one deadline each
            # (under real overload flushes trigger on "full" and drain
            # faster, so this errs toward backing clients off).
            batches_ahead = max(1, -(-depth // self.max_batch))
            retry_after = max(0.05, batches_ahead * max(self.max_wait_s, 1e-3))
            with self._stats_lock:
                self._stats.rejected += 1
            bus().metrics.counter("serving.overload_rejected").inc()
            emit(
                "overload_rejected", _SOURCE,
                batcher=self.name, depth=depth, limit=self.max_queue,
                retry_after_s=retry_after,
            )
            raise QueueFullError(self.name, depth, self.max_queue, retry_after)
        with self._stats_lock:
            self._stats.submitted += 1
        return future

    def queue_depth(self) -> int:
        """Accepted requests not yet resolved (the admission-control gauge)."""
        with self._submit_lock:
            return self._inflight

    # ------------------------------------------------------------------
    # Drain thread
    # ------------------------------------------------------------------
    def _drain_loop(self) -> None:
        pending: List[BatchRequest] = []
        stopping = False
        while True:
            # Greedily absorb everything already queued (up to max_batch):
            # requests that piled up while the previous batch was running
            # form the next batch instead of dribbling out one-per-flush
            # through already-expired deadlines.
            while len(pending) < self.max_batch:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is _STOP:
                    stopping = True  # sentinel is strictly last (see close())
                else:
                    pending.append(item)
            if len(pending) >= self.max_batch:
                self._flush(pending, "full")
                pending = []
                continue
            if stopping:
                if pending:
                    self._flush(pending, "drain")
                    pending = []
                break
            # The queue is empty; the deadline only starts mattering now.
            if pending:
                remaining = pending[0].enqueued_at + self.max_wait_s - time.perf_counter()
                if remaining <= 0:
                    self._flush(pending, "deadline")
                    pending = []
                    continue
                try:
                    item = self._queue.get(timeout=remaining)
                except queue.Empty:
                    self._flush(pending, "deadline")
                    pending = []
                    continue
            else:
                item = self._queue.get()
            if item is _STOP:
                stopping = True
            else:
                pending.append(item)

    def _flush(self, batch: List[BatchRequest], reason: str) -> None:
        now = time.perf_counter()
        for request in batch:
            request.started_at = now
        try:
            self.process_batch(batch)
            failed = 0
        except Exception as exc:  # noqa: BLE001 — delivered to the futures
            failed = 0
            for request in batch:
                if not request.future.done():
                    request.future.set_exception(exc)
                    failed += 1
            _LOG.warning("batch of %d failed: %s", len(batch), exc)
        unresolved = [r for r in batch if not r.future.done()]
        for request in unresolved:
            request.future.set_exception(
                RuntimeError("process_batch returned without resolving this request")
            )
        with self._stats_lock:
            self._stats.batches += 1
            self._stats.batch_size_histogram[len(batch)] += 1
            self._stats.flush_reasons[reason] += 1
            self._stats.failed += failed + len(unresolved)
            self._stats.completed += len(batch) - failed - len(unresolved)
        with self._submit_lock:
            self._inflight -= len(batch)
            depth = self._inflight
        metrics = bus().metrics
        metrics.gauge("serving.queue_depth").set(depth)
        metrics.histogram("serving.batch_size").observe(len(batch))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        with self._stats_lock:
            snapshot = {
                "submitted": self._stats.submitted,
                "completed": self._stats.completed,
                "failed": self._stats.failed,
                "rejected": self._stats.rejected,
                "batches": self._stats.batches,
                "batch_size_histogram": dict(self._stats.batch_size_histogram),
                "flush_reasons": dict(self._stats.flush_reasons),
            }
        snapshot["queue_depth"] = self.queue_depth()
        return snapshot
