"""Task executors that run inside orchestrator workers.

Each worker process keeps one :class:`BenchmarkRunner` (backed by the
shared on-disk artifact store) plus a small LRU of prepared scenarios, so
the many trial tasks of one scenario pay the dataset-build / model-load
cost once per worker instead of once per task.  All heavy state lives in
process-local globals — nothing here is shared across processes except the
artifact files themselves, whose writes are atomic.

Executors return small JSON-compatible dicts; the orchestrator records
them verbatim in the run ledger, which is what makes ``--resume`` able to
reuse a finished task without touching the artifact store.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..eval.budget import DefenderBudget
from ..eval.metrics import BackdoorMetrics
from ..eval.runner import (
    AggregateResult,
    BenchmarkRunner,
    ScenarioCache,
    ScenarioData,
    TrialCache,
    TrialResult,
)
from .dag import Task

__all__ = ["execute_task"]

_RUNNER: Optional[BenchmarkRunner] = None
_RUNNER_KEY: Optional[Tuple] = None
_SCENARIOS: Dict[str, ScenarioData] = {}

# Prepared scenarios held per worker; oldest evicted beyond this to bound
# memory on 100+ scenario grids.
_MAX_CACHED_SCENARIOS = 4


def _runner(ctx: Dict) -> BenchmarkRunner:
    global _RUNNER, _RUNNER_KEY
    key = (ctx.get("model_dir"), ctx.get("trial_dir"))
    if _RUNNER is None or _RUNNER_KEY != key:
        _RUNNER = BenchmarkRunner(
            cache=ScenarioCache(ctx.get("model_dir")),
            trial_cache=TrialCache(ctx.get("trial_dir")),
            verbose=bool(ctx.get("verbose", False)),
        )
        _RUNNER_KEY = key
        _SCENARIOS.clear()
    return _RUNNER


def _scenario(ctx: Dict, config) -> ScenarioData:
    fingerprint = config.fingerprint()
    if fingerprint not in _SCENARIOS:
        _SCENARIOS[fingerprint] = _runner(ctx).prepare(config)
        limit = int(ctx.get("max_cached_scenarios", _MAX_CACHED_SCENARIOS))
        while len(_SCENARIOS) > limit:
            _SCENARIOS.pop(next(iter(_SCENARIOS)))
    return _SCENARIOS[fingerprint]


def _metrics_dict(metrics: BackdoorMetrics) -> Dict[str, float]:
    return {"acc": float(metrics.acc), "asr": float(metrics.asr), "ra": float(metrics.ra)}


def _execute_train(ctx: Dict, task: Task) -> Dict:
    config = task.payload["config"]
    scenario = _scenario(ctx, config)
    return {
        "fingerprint": config.fingerprint(),
        "baseline": _metrics_dict(scenario.baseline),
    }


def _execute_trial(ctx: Dict, task: Task) -> Dict:
    payload = task.payload
    scenario = _scenario(ctx, payload["config"])
    budget = DefenderBudget(spc=payload["spc"], trial=payload["trial"], seed=payload["seed"])
    result = _runner(ctx).run_defense_trial(
        scenario, payload["defense"], budget, payload.get("defense_kwargs")
    )
    return {
        "key": payload["key"],
        "metrics": _metrics_dict(result.metrics),
        "cached": bool(result.details.get("cached")),
    }


def _execute_aggregate(ctx: Dict, task: Task) -> Dict:
    payload = task.payload
    trial_cache = _runner(ctx).trial_cache
    trials = []
    for entry in payload["trials"]:
        metrics = trial_cache.load(entry["key"])
        if metrics is None:
            raise RuntimeError(
                f"trial metrics missing from artifact store: {entry['key']} "
                f"({payload['defense']} spc={payload['spc']} trial={entry['trial']})"
            )
        trials.append(
            TrialResult(
                defense=payload["defense"],
                spc=payload["spc"],
                trial=entry["trial"],
                metrics=metrics,
            )
        )
    aggregate = AggregateResult.from_trials(trials)
    return {
        "defense": aggregate.defense,
        "spc": aggregate.spc,
        "acc_mean": aggregate.acc_mean,
        "acc_std": aggregate.acc_std,
        "asr_mean": aggregate.asr_mean,
        "asr_std": aggregate.asr_std,
        "ra_mean": aggregate.ra_mean,
        "ra_std": aggregate.ra_std,
        "num_trials": aggregate.num_trials,
    }


_EXECUTORS = {
    "train": _execute_train,
    "trial": _execute_trial,
    "aggregate": _execute_aggregate,
}


def execute_task(ctx: Dict, task: Task, attempt: int) -> Dict:
    """Pool entry point: dispatch one task to its kind-specific executor."""
    try:
        executor = _EXECUTORS[task.kind]
    except KeyError:
        raise ValueError(f"unknown task kind {task.kind!r} for {task.task_id}") from None
    return executor(ctx, task)
