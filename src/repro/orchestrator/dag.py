"""Task DAG model and readiness scheduling for experiment grids.

The orchestrator compiles an experiment spec into three task layers::

    train:<fingerprint>                  (train/load one backdoored model)
      └─ trial:<trial-key>               (one defense × budget application)
           └─ agg:<fp>:<defense>:<spc>   (mean ± std over that cell's trials)

:class:`TaskGraph` tracks per-task state and hands out ready work in
deterministic (insertion) order.  Failure is non-fatal by design: a
permanently failed task cascades ``skipped`` through its transitive
dependents and the rest of the grid keeps going (graceful degradation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

__all__ = ["Task", "TaskGraph"]

_TERMINAL = frozenset({"done", "failed", "skipped"})


@dataclass(frozen=True)
class Task:
    """One schedulable unit of work.

    ``payload`` must be picklable (it crosses the process boundary); it is
    never written to the ledger, which records only ids and results.
    """

    task_id: str
    kind: str  # "train" | "trial" | "aggregate"
    payload: Dict = field(default_factory=dict)
    deps: Tuple[str, ...] = ()
    scenario: str = ""  # ScenarioConfig.fingerprint(), for ledger keying


class TaskGraph:
    """Dependency-aware task states with cascade-skip on failure."""

    def __init__(self, tasks: Sequence[Task]) -> None:
        self.tasks: Dict[str, Task] = {}
        for task in tasks:
            if task.task_id in self.tasks:
                raise ValueError(f"duplicate task id {task.task_id!r}")
            self.tasks[task.task_id] = task
        self._dependents: Dict[str, List[str]] = {tid: [] for tid in self.tasks}
        for task in tasks:
            for dep in task.deps:
                if dep not in self.tasks:
                    raise ValueError(f"task {task.task_id!r} depends on unknown {dep!r}")
                self._dependents[dep].append(task.task_id)
        self.state: Dict[str, str] = {tid: "pending" for tid in self.tasks}
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        indegree = {tid: len(task.deps) for tid, task in self.tasks.items()}
        frontier = [tid for tid, deg in indegree.items() if deg == 0]
        seen = 0
        while frontier:
            tid = frontier.pop()
            seen += 1
            for dependent in self._dependents[tid]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    frontier.append(dependent)
        if seen != len(self.tasks):
            raise ValueError("task graph contains a cycle")

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def ready_tasks(self) -> List[Task]:
        """Pending tasks whose dependencies are all done, in insertion order."""
        out = []
        for tid, task in self.tasks.items():
            if self.state[tid] != "pending":
                continue
            if all(self.state[dep] == "done" for dep in task.deps):
                out.append(task)
        return out

    def mark_running(self, task_id: str) -> None:
        self.state[task_id] = "running"

    def requeue(self, task_id: str) -> None:
        """Return a running task to the pending pool (retry path)."""
        self.state[task_id] = "pending"

    def mark_done(self, task_id: str) -> None:
        self.state[task_id] = "done"

    def mark_failed(self, task_id: str) -> List[str]:
        """Mark permanent failure; returns transitively skipped dependents."""
        self.state[task_id] = "failed"
        skipped: List[str] = []
        frontier = list(self._dependents[task_id])
        while frontier:
            tid = frontier.pop(0)
            if self.state[tid] in _TERMINAL:
                continue
            self.state[tid] = "skipped"
            skipped.append(tid)
            frontier.extend(self._dependents[tid])
        return skipped

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def is_complete(self) -> bool:
        return all(status in _TERMINAL for status in self.state.values())

    def counts(self) -> Dict[str, int]:
        summary: Dict[str, int] = {}
        for status in self.state.values():
            summary[status] = summary.get(status, 0) + 1
        return summary

    def __len__(self) -> int:
        return len(self.tasks)
