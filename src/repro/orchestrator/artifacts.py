"""Unified content-addressed artifact store with atomic, integrity-checked IO.

Every expensive product of the pipeline — backdoored-model checkpoints,
per-trial metrics, aggregates — is stored under a key that is itself a
content hash of the *inputs* that produced it (``ScenarioConfig.fingerprint``,
``TrialCache.key``), so identical work is never redone.  On top of that
addressing scheme the store records a sha256 digest of each artifact's own
bytes in a ``.sha256`` sidecar and verifies it on load: a corrupt file (e.g.
from a worker killed mid-write, disk trouble, or a partial copy) is detected,
removed, and reported as a miss instead of poisoning later runs.

All writes are atomic (temporary file in the same directory, then
``os.replace``).  Files written by older versions of the code have no
sidecar and are loaded unverified for backward compatibility.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Optional

import numpy as np

from ..nn.serialization import CheckpointError, load_state, save_state
from ..utils.logging import get_logger

__all__ = ["ArtifactStore", "content_hash"]

_LOG = get_logger("repro.orchestrator.artifacts")


def content_hash(payload) -> str:
    """Stable sha256 hex digest of a JSON-serializable payload."""
    encoded = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.sha256(encoded).hexdigest()


def _file_sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _atomic_write_text(path: str, text: str) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)


class ArtifactStore:
    """Keyed artifact directory with atomic writes and checksummed loads.

    Parameters
    ----------
    root:
        Directory holding the artifacts (created on demand).
    verify:
        When True (default), loads recompute the file digest and compare it
        against the sidecar; mismatches are treated as misses and the bad
        files removed.
    """

    def __init__(self, root: str, verify: bool = True) -> None:
        self.root = root
        self.verify = verify
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path(self, key: str, suffix: str) -> str:
        return os.path.join(self.root, f"{key}{suffix}")

    def _sidecar(self, path: str) -> str:
        return f"{path}.sha256"

    def has(self, key: str, suffix: str) -> bool:
        return os.path.exists(self.path(key, suffix))

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def _seal(self, path: str) -> None:
        """Record the artifact's digest after the data file is in place."""
        _atomic_write_text(self._sidecar(path), _file_sha256(path))

    def _check(self, path: str) -> bool:
        """True if ``path`` matches its sidecar (or has none — legacy file)."""
        sidecar = self._sidecar(path)
        if not self.verify or not os.path.exists(sidecar):
            return True
        with open(sidecar) as handle:
            expected = handle.read().strip()
        return _file_sha256(path) == expected

    def _drop_corrupt(self, path: str, reason: str) -> None:
        _LOG.warning("dropping corrupt artifact %s (%s)", path, reason)
        for victim in (path, self._sidecar(path)):
            if os.path.exists(victim):
                os.remove(victim)

    def delete(self, key: str, suffix: str) -> None:
        path = self.path(key, suffix)
        for victim in (path, self._sidecar(path)):
            if os.path.exists(victim):
                os.remove(victim)

    # ------------------------------------------------------------------
    # npz state dicts
    # ------------------------------------------------------------------
    def put_state(self, key: str, state: Dict[str, np.ndarray]) -> str:
        path = self.path(key, ".npz")
        save_state(state, path)
        self._seal(path)
        return path

    def get_state(self, key: str) -> Optional[Dict[str, np.ndarray]]:
        path = self.path(key, ".npz")
        if not os.path.exists(path):
            return None
        if not self._check(path):
            self._drop_corrupt(path, "checksum mismatch")
            return None
        try:
            return load_state(path)
        except CheckpointError as exc:
            self._drop_corrupt(path, str(exc))
            return None

    # ------------------------------------------------------------------
    # JSON documents
    # ------------------------------------------------------------------
    def put_json(self, key: str, payload: Dict) -> str:
        path = self.path(key, ".json")
        _atomic_write_text(path, json.dumps(payload, sort_keys=True))
        self._seal(path)
        return path

    def get_json(self, key: str) -> Optional[Dict]:
        path = self.path(key, ".json")
        if not os.path.exists(path):
            return None
        if not self._check(path):
            self._drop_corrupt(path, "checksum mismatch")
            return None
        try:
            with open(path) as handle:
                return json.load(handle)
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
            self._drop_corrupt(path, f"{type(exc).__name__}: {exc}")
            return None
