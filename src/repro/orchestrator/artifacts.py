"""Unified content-addressed artifact store with atomic, integrity-checked IO.

Every expensive product of the pipeline — backdoored-model checkpoints,
per-trial metrics, aggregates — is stored under a key that is itself a
content hash of the *inputs* that produced it (``ScenarioConfig.fingerprint``,
``TrialCache.key``), so identical work is never redone.  On top of that
addressing scheme the store records a sha256 digest of each artifact's own
bytes in a ``.sha256`` sidecar and verifies it on load: a corrupt file (e.g.
from a worker killed mid-write, disk trouble, or a partial copy) is detected,
removed, and reported as a miss instead of poisoning later runs.

All writes are atomic (temporary file in the same directory, then
``os.replace``).  Files written by older versions of the code have no
sidecar and are loaded unverified for backward compatibility.

Concurrent readers are first-class: the serving gateway hot-swaps model
checkpoints by ``get``-ing keys that an orchestrator (or a re-``put`` of the
same content) may be writing at the same instant.  Publication is therefore
*seal-before-publish*: the artifact is staged to a temporary file, its
digest is added to the sidecar **first** (alongside the digest of the data
currently visible under the final name), and only then is the data file
moved into place; a final compaction rewrites the sidecar to just the new
digest.  A reader that interleaves anywhere in that sequence sees either the
old artifact or the new one — both of whose digests the sidecar lists — and
never a checksum mismatch for a healthy file.  Verification is additionally
*frame-checked*: a digest/sidecar mismatch is only treated as corruption
when the data file's inode and the sidecar's content were stable across the
comparison, so a reader that straddles two publish generations of a busy
key retries instead of misdiagnosing (and deleting!) a healthy artifact.
Writers of *different* content racing on the same key (outside the
content-addressed contract) therefore cost retries, never a torn read.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, List, Optional

import numpy as np

from ..nn.serialization import CheckpointError, load_state, save_state
from ..utils.logging import get_logger

__all__ = ["ArtifactStore", "content_hash"]

_LOG = get_logger("repro.orchestrator.artifacts")


def content_hash(payload) -> str:
    """Stable sha256 hex digest of a JSON-serializable payload."""
    encoded = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.sha256(encoded).hexdigest()


def _file_sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _atomic_write_text(path: str, text: str) -> None:
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    finally:
        if os.path.exists(tmp):
            os.remove(tmp)


class ArtifactStore:
    """Keyed artifact directory with atomic writes and checksummed loads.

    Parameters
    ----------
    root:
        Directory holding the artifacts (created on demand).
    verify:
        When True (default), loads recompute the file digest and compare it
        against the sidecar; mismatches are treated as misses and the bad
        files removed.
    """

    def __init__(self, root: str, verify: bool = True) -> None:
        self.root = root
        self.verify = verify
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path(self, key: str, suffix: str) -> str:
        return os.path.join(self.root, f"{key}{suffix}")

    def _sidecar(self, path: str) -> str:
        return f"{path}.sha256"

    def has(self, key: str, suffix: str) -> bool:
        return os.path.exists(self.path(key, suffix))

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def _read_sidecar(self, path: str) -> Optional[List[str]]:
        """Digests the sidecar currently accepts for ``path`` (None if absent)."""
        sidecar = self._sidecar(path)
        try:
            with open(sidecar) as handle:
                return [line.strip() for line in handle if line.strip()]
        except OSError:
            return None

    def _between_steps(self, stage: str) -> None:
        """Test seam: called between the atomic steps of :meth:`_publish`."""

    def _publish(self, tmp: str, path: str) -> None:
        """Move staged file ``tmp`` to ``path`` without a reader-visible gap.

        Sequence (each step individually atomic):

        1. *seal* — sidecar := {staged digest} ∪ {digest of the data file
           readers currently see} (computed from the old sidecar, or by
           hashing a legacy file that has none);
        2. *publish* — ``os.replace(tmp, path)``;
        3. *compact* — sidecar := {staged digest} only.

        At every interleaving point the visible data file's digest is listed
        in the visible sidecar, so a concurrent :meth:`_check` passes on
        whichever version it observes.
        """
        new_digest = _file_sha256(tmp)
        accepted = [new_digest]
        previous = self._read_sidecar(path)
        if previous is None and os.path.exists(path):
            previous = [_file_sha256(path)]  # legacy artifact without sidecar
        for digest in previous or []:
            if digest not in accepted:
                accepted.append(digest)
        self._between_steps("staged")
        _atomic_write_text(self._sidecar(path), "\n".join(accepted))
        self._between_steps("sealed")
        os.replace(tmp, path)
        self._between_steps("published")
        _atomic_write_text(self._sidecar(path), new_digest)
        self._between_steps("compacted")

    _VERIFY_ATTEMPTS = 8

    def _check(self, path: str) -> bool:
        """True if ``path`` matches its sidecar (or has none — legacy file).

        A mismatch only counts as corruption when observed in a *stable
        frame*: the data file's inode and the sidecar's content are the same
        before and after hashing, so digest and sidecar were genuinely
        paired at one instant.  An unstable frame means a live writer
        republished between our two reads (the digest and sidecar belong to
        different generations) — retry.  If the key is still churning after
        every retry the file is being actively (re)written, not rotting on
        disk; accept it and let the format-level checks in the actual load
        (npz CRC, JSON parse) have the final word.
        """
        if not self.verify:
            return True
        for _ in range(self._VERIFY_ATTEMPTS):
            try:
                stat_before = os.stat(path)
                accepted = self._read_sidecar(path)
                if accepted is None:
                    return True
                digest = _file_sha256(path)
                stat_after = os.stat(path)
                accepted_after = self._read_sidecar(path)
            except FileNotFoundError:
                return True  # vanished mid-check; the load itself will decide
            if digest in accepted or (accepted_after or []).count(digest):
                return True
            stable = (
                stat_before.st_ino == stat_after.st_ino
                and accepted == accepted_after
            )
            if stable:
                return False
        return True

    def _drop_corrupt(self, path: str, reason: str) -> None:
        _LOG.warning("dropping corrupt artifact %s (%s)", path, reason)
        for victim in (path, self._sidecar(path)):
            try:
                os.remove(victim)
            except FileNotFoundError:
                pass  # another process healed it first

    def delete(self, key: str, suffix: str) -> None:
        path = self.path(key, suffix)
        for victim in (path, self._sidecar(path)):
            if os.path.exists(victim):
                os.remove(victim)

    # ------------------------------------------------------------------
    # npz state dicts
    # ------------------------------------------------------------------
    def put_state(self, key: str, state: Dict[str, np.ndarray]) -> str:
        path = self.path(key, ".npz")
        # Stage next to the final name (same filesystem); save_state needs
        # the .npz suffix or np.savez silently appends one.
        tmp = self.path(key, f".stage.{os.getpid()}.npz")
        try:
            save_state(state, tmp)
            self._publish(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.remove(tmp)
        return path

    def get_state(self, key: str) -> Optional[Dict[str, np.ndarray]]:
        path = self.path(key, ".npz")
        if not os.path.exists(path):
            return None
        if not self._check(path):
            self._drop_corrupt(path, "checksum mismatch")
            return None
        try:
            return load_state(path)
        except CheckpointError as exc:
            self._drop_corrupt(path, str(exc))
            return None

    # ------------------------------------------------------------------
    # JSON documents
    # ------------------------------------------------------------------
    def put_json(self, key: str, payload: Dict) -> str:
        path = self.path(key, ".json")
        tmp = self.path(key, f".stage.{os.getpid()}.json")
        try:
            with open(tmp, "w") as handle:
                handle.write(json.dumps(payload, sort_keys=True))
            self._publish(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.remove(tmp)
        return path

    def get_json(self, key: str) -> Optional[Dict]:
        path = self.path(key, ".json")
        if not os.path.exists(path):
            return None
        if not self._check(path):
            self._drop_corrupt(path, "checksum mismatch")
            return None
        try:
            with open(path) as handle:
                return json.load(handle)
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
            self._drop_corrupt(path, f"{type(exc).__name__}: {exc}")
            return None
