"""Fault-tolerant parallel experiment orchestration.

Layers (each usable on its own):

- :mod:`~repro.orchestrator.artifacts` — content-addressed artifact store
  (atomic writes, checksummed loads) backing the model/trial caches.
- :mod:`~repro.orchestrator.ledger` — append-only JSONL run ledger.
- :mod:`~repro.orchestrator.dag` — task DAG + readiness scheduling.
- :mod:`~repro.orchestrator.pool` — retrying worker pool with per-task
  timeouts and deterministic fault injection.
- :mod:`~repro.orchestrator.orchestrator` — compiles an experiment spec
  into the DAG and runs it (``repro orchestrate``).

``Orchestrator`` / ``OrchestratorConfig`` / ``build_experiment_dag`` are
re-exported lazily: the evaluation layer imports the artifact store from
this package, so eagerly importing the orchestrator module here (which
itself imports the evaluation layer) would create an import cycle.
"""

from .artifacts import ArtifactStore, content_hash
from .dag import Task, TaskGraph
from .ledger import RunLedger, TaskRecord
from .pool import (
    FAULT_KILL_ENV,
    FAULT_RATE_ENV,
    FaultInjected,
    TaskOutcome,
    fault_roll,
    maybe_inject_fault,
    run_tasks,
)

__all__ = [
    "ArtifactStore",
    "content_hash",
    "Task",
    "TaskGraph",
    "RunLedger",
    "TaskRecord",
    "TaskOutcome",
    "FaultInjected",
    "FAULT_RATE_ENV",
    "FAULT_KILL_ENV",
    "fault_roll",
    "maybe_inject_fault",
    "run_tasks",
    "Orchestrator",
    "OrchestratorConfig",
    "OrchestrationResult",
    "build_experiment_dag",
    "GraphRunResult",
    "run_ledgered_graph",
]

_LAZY = {
    "Orchestrator",
    "OrchestratorConfig",
    "OrchestrationResult",
    "build_experiment_dag",
    "GraphRunResult",
    "run_ledgered_graph",
}


def __getattr__(name: str):
    if name in _LAZY:
        from . import orchestrator as _orchestrator

        return getattr(_orchestrator, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
