"""Append-only JSONL run ledger: durable progress for resumable grids.

Every task state change is one JSON line appended (and fsynced) to
``ledger.jsonl`` in the run directory::

    {"ts": ..., "event": "run_meta", "experiment": "table1", "grid": "ab12..", ...}
    {"ts": ..., "event": "queued",   "task": "train:3f..", "kind": "train", "scenario": "3f.."}
    {"ts": ..., "event": "started",  "task": "trial:9c..", "attempt": 1, "worker": 2}
    {"ts": ..., "event": "finished", "task": "trial:9c..", "attempt": 1, "worker": 2,
     "elapsed": 12.3, "result": {"metrics": {...}}}
    {"ts": ..., "event": "failed",   "task": "...", "attempt": 1, "error": "..."}
    {"ts": ..., "event": "retried",  "task": "...", "attempt": 2, "delay": 0.5}
    {"ts": ..., "event": "skipped",  "task": "...", "reason": "dep_failed:train:3f.."}

Task ids embed ``ScenarioConfig.fingerprint()`` (and trial-cache keys, which
hash the fingerprint plus defense parameters), so a ledger written by one
process maps exactly onto the task DAG a later ``--resume`` invocation
rebuilds from the same experiment spec.  :meth:`RunLedger.replay` folds the
event stream into per-task records; tasks whose final state is ``done``
carry their (small) result payload inline and are never re-executed.

A crash can truncate at most the final line; replay skips unparsable lines.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["RunLedger", "TaskRecord"]

# Event → resulting task status (replay fold).
_STATUS_FOR_EVENT = {
    "queued": "queued",
    "started": "running",
    "finished": "done",
    "failed": "failed",
    "retried": "queued",
    "skipped": "skipped",
}


@dataclass
class TaskRecord:
    """Folded state of one task after ledger replay."""

    task_id: str
    status: str = "queued"  # queued | running | done | failed | skipped
    kind: str = ""
    scenario: str = ""
    attempts: int = 0
    result: Optional[Dict] = None
    error: Optional[str] = None
    elapsed: float = 0.0
    events: int = field(default=0, repr=False)


class RunLedger:
    """Append-only JSONL ledger for one logical run directory."""

    FILENAME = "ledger.jsonl"

    def __init__(self, run_dir: str) -> None:
        self.run_dir = run_dir
        os.makedirs(run_dir, exist_ok=True)
        self.path = os.path.join(run_dir, self.FILENAME)

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, event: str, **fields) -> None:
        """Append one event line; flushed and fsynced for crash durability."""
        record = {"ts": round(time.time(), 3), "event": event}
        record.update(fields)
        line = json.dumps(record, sort_keys=True, default=str)
        with open(self.path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def rotate(self) -> Optional[str]:
        """Move an existing ledger aside (fresh, non-resume runs); returns new name."""
        if not os.path.exists(self.path):
            return None
        index = 1
        while os.path.exists(f"{self.path}.bak{index}"):
            index += 1
        backup = f"{self.path}.bak{index}"
        os.replace(self.path, backup)
        return backup

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(self) -> Tuple[Dict, Dict[str, TaskRecord]]:
        """Fold the event stream into ``(run_meta, {task_id: TaskRecord})``.

        Malformed lines (a crash can truncate the tail) are skipped.
        """
        meta: Dict = {}
        records: Dict[str, TaskRecord] = {}
        if not os.path.exists(self.path):
            return meta, records
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue
                event = entry.get("event")
                if event == "run_meta":
                    meta = entry
                    continue
                task_id = entry.get("task")
                if not task_id or event not in _STATUS_FOR_EVENT:
                    continue
                record = records.setdefault(task_id, TaskRecord(task_id=task_id))
                record.events += 1
                record.status = _STATUS_FOR_EVENT[event]
                if entry.get("kind"):
                    record.kind = entry["kind"]
                if entry.get("scenario"):
                    record.scenario = entry["scenario"]
                if event == "started":
                    record.attempts = max(record.attempts, int(entry.get("attempt", 1)))
                if event == "finished":
                    record.result = entry.get("result")
                    record.elapsed = float(entry.get("elapsed", 0.0))
                if event == "failed":
                    record.error = entry.get("error")
        return meta, records

    def done_tasks(self) -> Dict[str, TaskRecord]:
        """Tasks whose final ledger state is ``done`` (with inline results)."""
        _, records = self.replay()
        return {tid: rec for tid, rec in records.items() if rec.status == "done"}
