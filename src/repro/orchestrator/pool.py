"""Fault-tolerant task execution: multiprocessing pool + inline fallback.

Execution model
---------------
``run_tasks`` drains a :class:`~repro.orchestrator.dag.TaskGraph`:

- ``workers == 0`` runs every task inline in the calling process (no
  timeout preemption, but identical retry/backoff/fault-injection
  semantics — useful for tests and debugging).
- ``workers >= 1`` forks that many worker processes, each connected to the
  parent by its own duplex pipe.  The parent therefore always knows which
  task a worker is running and since when, which makes per-task timeouts
  enforceable: an overrunning worker is terminated and replaced, and the
  task goes through the normal failure path.

Failures (exceptions, worker death, timeouts) are retried up to
``max_retries`` times with exponential backoff; a task that exhausts its
retries is marked failed and its transitive dependents are skipped — the
rest of the grid keeps running.

Fault injection
---------------
Setting ``REPRO_ORCH_FAULT_RATE=<p>`` makes a deterministic fraction of
(task, attempt) pairs fail before executing (hash-based, so a given
attempt either always faults or never does — reruns are reproducible and a
retry of a faulted attempt can genuinely succeed).  With
``REPRO_ORCH_FAULT_KILL=1`` an injected fault in a subprocess hard-kills
the worker (``os._exit``) instead of raising, exercising the
worker-death/EOF recovery path.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import multiprocessing.connection
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..telemetry import bus
from ..utils.logging import get_logger
from .dag import Task, TaskGraph

__all__ = [
    "FAULT_RATE_ENV",
    "FAULT_KILL_ENV",
    "FaultInjected",
    "TaskOutcome",
    "fault_roll",
    "maybe_inject_fault",
    "run_tasks",
]

FAULT_RATE_ENV = "REPRO_ORCH_FAULT_RATE"
FAULT_KILL_ENV = "REPRO_ORCH_FAULT_KILL"

_LOG = get_logger("repro.orchestrator.pool")

# executor(ctx, task, attempt) -> result dict
Executor = Callable[[Dict, Task, int], Dict]


class FaultInjected(RuntimeError):
    """Deterministic injected failure (see ``REPRO_ORCH_FAULT_RATE``)."""


@dataclass
class TaskOutcome:
    """Terminal result of one task after all retries."""

    task_id: str
    ok: bool
    value: Optional[Dict]
    error: Optional[str]
    elapsed: float
    worker: int
    attempts: int


def fault_roll(task_id: str, attempt: int) -> float:
    """Deterministic uniform [0, 1) roll for one (task, attempt) pair."""
    digest = hashlib.sha256(f"{task_id}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


def maybe_inject_fault(task_id: str, attempt: int, allow_kill: bool) -> None:
    """Raise (or hard-exit) if the fault-injection roll trips."""
    rate = float(os.environ.get(FAULT_RATE_ENV, "0") or 0.0)
    if rate <= 0.0 or fault_roll(task_id, attempt) >= rate:
        return
    if allow_kill and os.environ.get(FAULT_KILL_ENV, "") not in ("", "0"):
        os._exit(17)  # simulate SIGKILL'd worker: no cleanup, no exception
    raise FaultInjected(f"injected fault: task={task_id} attempt={attempt}")


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------
def _worker_main(conn, executor: Executor, ctx: Dict, worker_id: int) -> None:
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            break
        if item is None:
            break
        task, attempt = item
        start = time.perf_counter()
        try:
            maybe_inject_fault(task.task_id, attempt, allow_kill=True)
            value = executor(ctx, task, attempt)
            message = (task.task_id, attempt, True, value, None, time.perf_counter() - start)
        except BaseException as exc:  # noqa: BLE001 — workers must not die on task errors
            error = f"{type(exc).__name__}: {exc}"
            message = (task.task_id, attempt, False, None, error, time.perf_counter() - start)
        # Workers exit via os._exit (multiprocessing bootstrap skips
        # interpreter shutdown), so buffered sink output must be pushed to
        # disk per task or the per-pid telemetry files stay empty.
        bus().flush()
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):
            break
    conn.close()


class _WorkerHandle:
    def __init__(self, mp_ctx, executor: Executor, ctx: Dict, worker_id: int) -> None:
        self.worker_id = worker_id
        self.conn, child_conn = mp_ctx.Pipe(duplex=True)
        self.proc = mp_ctx.Process(
            target=_worker_main,
            args=(child_conn, executor, ctx, worker_id),
            daemon=True,
            name=f"repro-orch-worker-{worker_id}",
        )
        self.proc.start()
        child_conn.close()  # parent keeps only its end → EOF is detectable

    def stop(self, grace: float = 1.0) -> None:
        try:
            if self.proc.is_alive():
                self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(grace)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(grace)
        self.conn.close()

    def kill(self) -> None:
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(1.0)
        self.conn.close()


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------
class _Driver:
    """Shared retry/outcome bookkeeping for the inline and pooled modes."""

    def __init__(self, graph, max_retries, retry_backoff, on_event):
        self.graph = graph
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.on_event = on_event or (lambda event, task, **fields: None)
        self.outcomes: Dict[str, TaskOutcome] = {}
        self.attempts: Dict[str, int] = {}
        self.not_before: Dict[str, float] = {}

    def dispatchable(self, now: float) -> List[Task]:
        return [
            task
            for task in self.graph.ready_tasks()
            if self.not_before.get(task.task_id, 0.0) <= now
        ]

    def next_retry_delay(self, now: float) -> Optional[float]:
        """Seconds until the earliest backoff expiry among pending tasks."""
        pending = [
            due
            for tid, due in self.not_before.items()
            if self.graph.state.get(tid) == "pending" and due > now
        ]
        return (min(pending) - now) if pending else None

    def begin(self, task: Task, worker: int) -> int:
        attempt = self.attempts.get(task.task_id, 0) + 1
        self.attempts[task.task_id] = attempt
        self.graph.mark_running(task.task_id)
        self.on_event("started", task, attempt=attempt, worker=worker)
        return attempt

    def succeed(self, task: Task, attempt: int, value: Dict, elapsed: float, worker: int) -> None:
        self.graph.mark_done(task.task_id)
        self.outcomes[task.task_id] = TaskOutcome(
            task_id=task.task_id, ok=True, value=value, error=None,
            elapsed=elapsed, worker=worker, attempts=attempt,
        )
        self.on_event(
            "finished", task, attempt=attempt, worker=worker, elapsed=elapsed, result=value
        )

    def fail(self, task: Task, attempt: int, error: str, elapsed: float, worker: int) -> None:
        self.on_event(
            "failed", task, attempt=attempt, worker=worker, elapsed=elapsed, error=error
        )
        if attempt <= self.max_retries:
            delay = self.retry_backoff * (2.0 ** (attempt - 1))
            self.not_before[task.task_id] = time.monotonic() + delay
            self.graph.requeue(task.task_id)
            self.on_event("retried", task, attempt=attempt + 1, delay=delay)
            return
        skipped = self.graph.mark_failed(task.task_id)
        self.outcomes[task.task_id] = TaskOutcome(
            task_id=task.task_id, ok=False, value=None, error=error,
            elapsed=elapsed, worker=worker, attempts=attempt,
        )
        for sid in skipped:
            dep_task = self.graph.tasks[sid]
            self.outcomes[sid] = TaskOutcome(
                task_id=sid, ok=False, value=None,
                error=f"dep_failed:{task.task_id}", elapsed=0.0, worker=-1, attempts=0,
            )
            self.on_event("skipped", dep_task, reason=f"dep_failed:{task.task_id}")


def _run_inline(driver: _Driver, executor: Executor, ctx: Dict) -> None:
    graph = driver.graph
    while not graph.is_complete():
        now = time.monotonic()
        ready = driver.dispatchable(now)
        if not ready:
            delay = driver.next_retry_delay(now)
            if delay is None:
                break  # nothing runnable and no retries pending
            time.sleep(min(delay, 1.0))
            continue
        task = ready[0]
        attempt = driver.begin(task, worker=0)
        start = time.perf_counter()
        try:
            maybe_inject_fault(task.task_id, attempt, allow_kill=False)
            value = executor(ctx, task, attempt)
        except KeyboardInterrupt:
            raise
        except BaseException as exc:  # noqa: BLE001 — degrade, don't abort the grid
            driver.fail(
                task, attempt, f"{type(exc).__name__}: {exc}",
                time.perf_counter() - start, worker=0,
            )
            continue
        driver.succeed(task, attempt, value, time.perf_counter() - start, worker=0)


def _run_pooled(
    driver: _Driver,
    executor: Executor,
    ctx: Dict,
    workers: int,
    task_timeout: Optional[float],
) -> None:
    graph = driver.graph
    mp_ctx = _mp_context()
    handles: Dict[int, _WorkerHandle] = {}
    idle: List[int] = []
    # wid -> (task, attempt, started_monotonic)
    inflight: Dict[int, Tuple[Task, int, float]] = {}
    next_wid = 0

    def spawn() -> int:
        nonlocal next_wid
        wid = next_wid
        next_wid += 1
        handles[wid] = _WorkerHandle(mp_ctx, executor, ctx, wid)
        return wid

    def replace(wid: int, *, hard: bool) -> None:
        handle = handles.pop(wid)
        (handle.kill if hard else handle.stop)()
        idle.append(spawn())

    for _ in range(workers):
        idle.append(spawn())

    try:
        while not graph.is_complete():
            now = time.monotonic()
            # Dispatch ready work onto idle workers.
            for task in driver.dispatchable(now):
                if not idle:
                    break
                wid = idle.pop()
                attempt = driver.begin(task, worker=wid)
                try:
                    handles[wid].conn.send((task, attempt))
                except (BrokenPipeError, OSError):
                    replace(wid, hard=True)
                    driver.fail(task, attempt, "worker pipe broken on dispatch", 0.0, wid)
                    continue
                inflight[wid] = (task, attempt, time.monotonic())
            if graph.is_complete():
                break
            if not inflight:
                delay = driver.next_retry_delay(time.monotonic())
                if delay is None:
                    break
                time.sleep(min(delay, 1.0))
                continue
            # Wait for results, a worker death, or the next deadline.
            wait_timeout = 0.25
            if task_timeout is not None:
                oldest = min(start for _, _, start in inflight.values())
                wait_timeout = max(0.01, min(wait_timeout, oldest + task_timeout - now))
            by_conn = {handles[wid].conn: wid for wid in inflight}
            ready_conns = multiprocessing.connection.wait(list(by_conn), timeout=wait_timeout)
            for conn in ready_conns:
                wid = by_conn[conn]
                task, attempt, started = inflight.pop(wid)
                try:
                    _, _, ok, value, error, elapsed = conn.recv()
                except (EOFError, OSError):
                    replace(wid, hard=True)
                    driver.fail(
                        task, attempt, "worker died (killed or crashed)",
                        time.monotonic() - started, wid,
                    )
                    continue
                idle.append(wid)
                if ok:
                    driver.succeed(task, attempt, value, elapsed, wid)
                else:
                    driver.fail(task, attempt, error, elapsed, wid)
            # Enforce per-task deadlines.
            if task_timeout is not None:
                now = time.monotonic()
                for wid in list(inflight):
                    task, attempt, started = inflight[wid]
                    if now - started > task_timeout:
                        del inflight[wid]
                        replace(wid, hard=True)
                        driver.fail(
                            task, attempt,
                            f"timeout after {task_timeout:.1f}s", now - started, wid,
                        )
    finally:
        for handle in handles.values():
            handle.stop()


def run_tasks(
    graph: TaskGraph,
    executor: Executor,
    ctx: Optional[Dict] = None,
    *,
    workers: int = 0,
    task_timeout: Optional[float] = None,
    max_retries: int = 2,
    retry_backoff: float = 0.5,
    on_event: Optional[Callable] = None,
) -> Dict[str, TaskOutcome]:
    """Execute ``graph`` to completion; returns terminal outcomes by task id.

    ``on_event(event, task, **fields)`` is invoked in the parent process for
    every state change (``started`` / ``finished`` / ``failed`` / ``retried``
    / ``skipped``) — the orchestrator uses it to write the run ledger.
    """
    ctx = ctx or {}
    driver = _Driver(graph, max_retries, retry_backoff, on_event)
    if workers <= 0:
        _run_inline(driver, executor, ctx)
    else:
        _run_pooled(driver, executor, ctx, workers, task_timeout)
    return driver.outcomes
