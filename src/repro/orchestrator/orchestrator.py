"""Compile an experiment spec into a task DAG and run it fault-tolerantly.

``Orchestrator.run`` is the parallel, resumable counterpart of
:func:`repro.eval.experiments.run_experiment`:

- the grid is compiled by the same :func:`scenario_configs` /
  :func:`budget_trials` code paths, so task identities (scenario
  fingerprints, trial-cache keys) — and therefore all cached artifacts —
  are byte-identical between the serial and orchestrated paths;
- every task state change is appended to a JSONL run ledger; ``--resume``
  replays the ledger and re-runs only tasks not recorded as done;
- workers execute tasks through a retrying pool with per-task timeouts;
  a permanently failed cell is reported and skipped, never fatal.

The produced aggregates are numerically identical to the serial path:
training and defense trials are deterministic functions of their seeds,
and the orchestrator runs exactly the same (config, defense, budget)
tuples — only the schedule differs.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..eval.budget import budget_trials
from ..eval.experiments import ExperimentResult, ExperimentSpec, scenario_configs
from ..eval.metrics import BackdoorMetrics
from ..eval.reporting import format_table
from ..eval.runner import AggregateResult, TrialCache
from ..telemetry import TELEMETRY_DIR_ENV, LoggerSink, bus, release_env_sink
from ..utils.logging import get_logger
from .artifacts import content_hash
from .dag import Task, TaskGraph
from .ledger import RunLedger, TaskRecord
from .pool import run_tasks
from .runtime import execute_task

__all__ = [
    "OrchestratorConfig",
    "OrchestrationResult",
    "Orchestrator",
    "build_experiment_dag",
    "GraphRunResult",
    "run_ledgered_graph",
]

_LOG = get_logger("repro.orchestrator")

_SOURCE = "orchestrator"

# Lifecycle events mirrored to the console (LoggerSink) in verbose mode.
# Hot per-round events (prune_round, tune_epoch) stay off the console and
# flow only to JSONL sinks / subscribers.
_CONSOLE_EVENTS = (
    "run_started",
    "run_finished",
    "started",
    "finished",
    "failed",
    "retried",
    "skipped",
)


def build_experiment_dag(
    spec: ExperimentSpec,
    attacks: Optional[Tuple[str, ...]] = None,
    models: Optional[Tuple[str, ...]] = None,
    root_seed: int = 0,
) -> List[Task]:
    """Compile (a slice of) an experiment grid into tasks.

    Layers: one ``train`` task per scenario, one ``trial`` task per
    (defense, SPC, trial) cell depending on it, and one ``aggregate`` task
    per (defense, SPC) cell depending on its trials.
    """
    prof = spec.profile
    tasks: List[Task] = []
    for model, attack, config in scenario_configs(spec, attacks, models, root_seed):
        fingerprint = config.fingerprint()
        train_id = f"train:{fingerprint}"
        tasks.append(
            Task(task_id=train_id, kind="train", payload={"config": config},
                 scenario=fingerprint)
        )
        for spc in prof.spc_values:
            for defense in spec.defenses:
                defense_kwargs = prof.defense_kwargs.get(defense)
                trial_ids: List[str] = []
                trial_entries: List[Dict] = []
                for budget in budget_trials(spc, prof.num_trials, root_seed):
                    key = TrialCache.key(config, defense, defense_kwargs, spc, budget.seed)
                    trial_id = f"trial:{key}"
                    trial_ids.append(trial_id)
                    trial_entries.append({"trial": budget.trial, "seed": budget.seed, "key": key})
                    tasks.append(
                        Task(
                            task_id=trial_id,
                            kind="trial",
                            payload={
                                "config": config,
                                "defense": defense,
                                "defense_kwargs": defense_kwargs,
                                "spc": spc,
                                "trial": budget.trial,
                                "seed": budget.seed,
                                "key": key,
                            },
                            deps=(train_id,),
                            scenario=fingerprint,
                        )
                    )
                tasks.append(
                    Task(
                        task_id=f"agg:{fingerprint}:{defense}:{spc}",
                        kind="aggregate",
                        payload={"defense": defense, "spc": spc, "trials": trial_entries},
                        deps=tuple(trial_ids),
                        scenario=fingerprint,
                    )
                )
    return tasks


@dataclass
class OrchestratorConfig:
    """Execution knobs for one orchestrated run."""

    workers: int = 0  # 0 = inline (no subprocesses); N >= 1 = N worker processes
    task_timeout: Optional[float] = None
    max_retries: int = 2
    retry_backoff: float = 0.5
    run_dir: Optional[str] = None
    resume: bool = False
    model_cache_dir: Optional[str] = None
    trial_cache_dir: Optional[str] = None
    verbose: bool = True
    # Export REPRO_TELEMETRY_DIR=<run_dir> for the run so this process and
    # every forked worker stream events to per-pid JSONL files that
    # ``repro watch <run_dir>`` tails alongside the ledger.
    telemetry: bool = True


@dataclass
class OrchestrationResult:
    """Outcome of one orchestrated run: results plus execution telemetry."""

    experiment: ExperimentResult
    run_dir: str
    ledger_path: str
    counts: Dict[str, int]
    failed_cells: List[str] = field(default_factory=list)
    reused: int = 0  # tasks served from the ledger (resume)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.failed_cells

    def table_text(self) -> str:
        """Paper-style tables for every cell that completed."""
        sections = []
        for model in self.experiment.spec.models:
            per_attack = self.experiment.results.get(model, {})
            baselines = self.experiment.baselines.get(model, {})
            present = {a: r for a, r in per_attack.items() if a in baselines}
            if not present:
                continue
            sections.append(
                format_table(
                    present,
                    baselines,
                    title=f"{self.experiment.spec.title} — {model}",
                )
            )
        return "\n\n".join(sections)

    def summary(self) -> str:
        parts = [f"{status}={count}" for status, count in sorted(self.counts.items())]
        line = (
            f"orchestrate: {' '.join(parts)} reused={self.reused} "
            f"elapsed={self.elapsed:.1f}s ledger={self.ledger_path}"
        )
        if self.failed_cells:
            line += "\nfailed cells:\n" + "\n".join(f"  - {cell}" for cell in self.failed_cells)
        return line


def _default_run_dir(spec: ExperimentSpec, grid_hash: str) -> str:
    cache_root = os.environ.get("REPRO_CACHE_DIR", os.path.expanduser("~/.cache/repro"))
    return os.path.join(cache_root, "runs", f"{spec.experiment_id}-{grid_hash[:12]}")


@dataclass
class GraphRunResult:
    """Raw outcome of one ledgered graph execution (pre-assembly)."""

    values: Dict[str, Dict]
    counts: Dict[str, int]
    reused: int
    elapsed: float
    run_dir: str
    ledger_path: str


def run_ledgered_graph(
    graph: TaskGraph,
    executor: Callable[[Dict, Task, int], Dict],
    ctx: Dict,
    *,
    cfg: OrchestratorConfig,
    run_dir: str,
    grid_hash: str,
    run_meta: Dict,
    preload: Optional[Callable[[Task, TaskRecord], bool]] = None,
    finish_fields: Optional[Callable[[Dict[str, Dict]], Dict]] = None,
    source: str = _SOURCE,
) -> GraphRunResult:
    """Execute a task graph with the full ledger/resume/telemetry plumbing.

    This is the engine under both the experiment-grid :class:`Orchestrator`
    and the federated round scheduler: resume replay with a grid-hash guard,
    ``run_meta``/``queued`` ledger appends, telemetry-dir export for forked
    workers, a verbose console mirror, per-event ledger + bus fan-out, and
    finally :func:`run_tasks` over the pool.

    Parameters
    ----------
    preload:
        Called for each ledger record whose status is ``done`` during
        resume; return True to accept the cached result (and optionally
        self-heal derived caches), False to force re-execution.  ``None``
        accepts everything.
    finish_fields:
        Called with the merged ``{task_id: result}`` map after the run;
        its return value is folded into the ``run_finished`` event (lets
        callers report assembly-level outcomes without re-emitting).
    """
    start = time.perf_counter()
    ledger = RunLedger(run_dir)

    preloaded: Dict[str, Dict] = {}
    if cfg.resume:
        meta, records = ledger.replay()
        if meta and meta.get("grid") != grid_hash:
            backup = ledger.rotate()
            _LOG.warning(
                "ledger at %s was written by a different grid (%s != %s); "
                "rotated to %s and starting fresh",
                ledger.path, meta.get("grid"), grid_hash, backup,
            )
        else:
            for task_id, record in records.items():
                if record.status != "done" or record.result is None:
                    continue
                task = graph.tasks.get(task_id)
                if task is None:
                    continue
                if preload is not None and not preload(task, record):
                    continue
                graph.mark_done(task_id)
                preloaded[task_id] = record.result
    else:
        ledger.rotate()

    ledger.append(
        "run_meta",
        grid=grid_hash,
        tasks=len(graph),
        workers=cfg.workers,
        resumed=bool(cfg.resume),
        preloaded=len(preloaded),
        **run_meta,
    )
    for task in graph.tasks.values():
        if task.task_id not in preloaded:
            ledger.append(
                "queued", task=task.task_id, kind=task.kind, scenario=task.scenario
            )
    # Light up the telemetry bus for this run.  The env export happens
    # BEFORE first bus() use so this process attaches its own per-pid
    # JSONL sink, and forked workers (which reset their bus post-fork)
    # attach theirs — all under run_dir, next to the ledger.
    env_exported = False
    if cfg.telemetry and not os.environ.get(TELEMETRY_DIR_ENV):
        os.environ[TELEMETRY_DIR_ENV] = run_dir
        env_exported = True
    run_bus = bus()
    console_sink = None
    if cfg.verbose:
        console_sink = run_bus.attach(LoggerSink(_LOG, events=_CONSOLE_EVENTS))

    def on_event(event: str, task: Task, **fields) -> None:
        ledger.append(event, task=task.task_id, kind=task.kind,
                      scenario=task.scenario, **fields)
        stream_fields = dict(fields)
        # Full results are durable in the ledger; keep the live stream
        # (and the verbose console mirror) light and greppable.
        stream_fields.pop("result", None)
        run_bus.emit(event, source, task=task.task_id, kind=task.kind, **stream_fields)
        if event in ("finished", "failed", "retried"):
            run_bus.metrics.counter(f"orchestrator.tasks_{event}").inc()

    try:
        run_bus.emit(
            "run_started", source,
            tasks=len(graph), preloaded=len(preloaded),
            workers=cfg.workers, run_dir=run_dir,
            **{k: run_meta[k] for k in ("experiment",) if k in run_meta},
        )
        outcomes = run_tasks(
            graph,
            executor,
            ctx,
            workers=cfg.workers,
            task_timeout=cfg.task_timeout,
            max_retries=cfg.max_retries,
            retry_backoff=cfg.retry_backoff,
            on_event=on_event,
        )

        values: Dict[str, Dict] = dict(preloaded)
        for task_id, outcome in outcomes.items():
            if outcome.ok and outcome.value is not None:
                values[task_id] = outcome.value

        counts = graph.counts()
        elapsed = time.perf_counter() - start
        extra = finish_fields(values) if finish_fields is not None else {}
        run_bus.emit(
            "run_finished", source,
            elapsed=elapsed, reused=len(preloaded),
            **{f"tasks_{k}": v for k, v in counts.items()},
            **extra,
        )
        return GraphRunResult(
            values=values,
            counts=counts,
            reused=len(preloaded),
            elapsed=elapsed,
            run_dir=run_dir,
            ledger_path=ledger.path,
        )
    finally:
        if console_sink is not None:
            run_bus.detach(console_sink)
        if env_exported:
            os.environ.pop(TELEMETRY_DIR_ENV, None)
            release_env_sink()


class Orchestrator:
    """Fault-tolerant, parallel, resumable experiment grid executor."""

    def __init__(self, config: Optional[OrchestratorConfig] = None) -> None:
        self.config = config or OrchestratorConfig()

    # ------------------------------------------------------------------
    def run(
        self,
        spec: ExperimentSpec,
        attacks: Optional[Tuple[str, ...]] = None,
        models: Optional[Tuple[str, ...]] = None,
        root_seed: int = 0,
    ) -> OrchestrationResult:
        cfg = self.config
        tasks = build_experiment_dag(spec, attacks, models, root_seed)
        graph = TaskGraph(tasks)
        # Grid identity: the sorted task ids hash every config/defense/seed
        # in the grid, so a ledger can only ever be resumed against the
        # exact grid that produced it.
        grid_hash = content_hash(sorted(graph.tasks))
        run_dir = cfg.run_dir or _default_run_dir(spec, grid_hash)

        trial_cache = TrialCache(cfg.trial_cache_dir)

        def preload(task: Task, record: TaskRecord) -> bool:
            # Self-heal: an aggregate task reads trial metrics from the
            # artifact store, which may have been cleaned since the trial
            # ran — re-seed it from the ledger result.
            if task.kind == "trial":
                key = record.result.get("key", task.payload["key"])
                if trial_cache.load(key) is None:
                    trial_cache.store(key, BackdoorMetrics(**record.result["metrics"]))
            return True

        assembled: Dict = {}

        def finish_fields(values: Dict[str, Dict]) -> Dict:
            assembled.update(self._assemble(spec, attacks, models, root_seed, values))
            return {"failed": len(assembled["failed_cells"])}

        outcome = run_ledgered_graph(
            graph,
            execute_task,
            {
                "model_dir": cfg.model_cache_dir,
                "trial_dir": cfg.trial_cache_dir,
                "verbose": False,
            },
            cfg=cfg,
            run_dir=run_dir,
            grid_hash=grid_hash,
            run_meta={
                "experiment": spec.experiment_id,
                "profile": spec.profile.name,
                "root_seed": root_seed,
            },
            preload=preload,
            finish_fields=finish_fields,
        )
        return OrchestrationResult(
            experiment=assembled["experiment"],
            run_dir=outcome.run_dir,
            ledger_path=outcome.ledger_path,
            counts=outcome.counts,
            failed_cells=assembled["failed_cells"],
            reused=outcome.reused,
            elapsed=outcome.elapsed,
        )

    # ------------------------------------------------------------------
    def _assemble(
        self,
        spec: ExperimentSpec,
        attacks: Optional[Tuple[str, ...]],
        models: Optional[Tuple[str, ...]],
        root_seed: int,
        values: Dict[str, Dict],
    ) -> Dict:
        """Fold task results back into the serial-path result shape."""
        prof = spec.profile
        results: Dict[str, Dict[str, List[AggregateResult]]] = {}
        baselines: Dict[str, Dict[str, BackdoorMetrics]] = {}
        failed_cells: List[str] = []
        for model, attack, config in scenario_configs(spec, attacks, models, root_seed):
            fingerprint = config.fingerprint()
            results.setdefault(model, {})
            baselines.setdefault(model, {})
            train_value = values.get(f"train:{fingerprint}")
            if train_value is None:
                failed_cells.append(f"{model}/{attack}: backdoor training failed")
                continue
            baselines[model][attack] = BackdoorMetrics(**train_value["baseline"])
            aggregates: List[AggregateResult] = []
            # Same cell order as BenchmarkRunner.run_grid: SPC-major.
            for spc in prof.spc_values:
                for defense in spec.defenses:
                    value = values.get(f"agg:{fingerprint}:{defense}:{spc}")
                    if value is None:
                        failed_cells.append(f"{model}/{attack}/{defense}/spc={spc}")
                        continue
                    aggregates.append(AggregateResult(**value))
            results[model][attack] = aggregates
        experiment = ExperimentResult(spec=spec, results=results, baselines=baselines)
        return {"experiment": experiment, "failed_cells": failed_cells}
