"""Command-line interface.

Examples::

    python -m repro list                         # what can I run?
    python -m repro demo --fast                  # quickstart pipeline
    python -m repro experiment table1            # regenerate a paper table
    python -m repro experiment figure2 --models preact_resnet18
    python -m repro orchestrate table1 --workers 4    # parallel, fault-tolerant
    python -m repro orchestrate table1 --workers 4 --resume   # finish a crashed run
    python -m repro attack badnets --model vgg19_bn   # train + report baseline
    python -m repro serve --strip --traffic adversarial   # defense-serving gateway
    python -m repro serve --http 8080                 # JSON-over-HTTP front
    python -m repro watch ~/.cache/repro/runs/table1-abc   # live run dashboard
    python -m repro registry gc --dry-run             # preview checkpoint GC
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .attacks import ATTACK_REGISTRY
from .defenses import DEFENSE_REGISTRY
from .eval import (
    EXPERIMENT_IDS,
    FEDERATED_EXPERIMENT_IDS,
    BenchmarkRunner,
    ScenarioConfig,
    experiment_spec,
    run_experiment,
)
from .models import MODEL_NAMES
from .orchestrator import Orchestrator, OrchestratorConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Unlearning Backdoor Attacks through "
        "Gradient-Based Model Pruning' (DSN 2024)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available models, attacks, defenses, experiments")

    demo = sub.add_parser("demo", help="run the quickstart pipeline")
    demo.add_argument("--fast", action="store_true")
    demo.add_argument("--spc", type=int, default=10)
    demo.add_argument("--seed", type=int, default=0)

    experiment = sub.add_parser("experiment", help="regenerate a paper table/figure")
    experiment.add_argument(
        "experiment_id",
        choices=[
            e for e in EXPERIMENT_IDS
            if e.startswith(("table", "figure")) and e not in FEDERATED_EXPERIMENT_IDS
        ],
    )
    experiment.add_argument("--profile", choices=("quick", "paper"), default=None)
    experiment.add_argument("--attacks", nargs="+", default=None)
    experiment.add_argument("--models", nargs="+", default=None)
    experiment.add_argument("--seed", type=int, default=0)

    orchestrate = sub.add_parser(
        "orchestrate",
        help="run an experiment grid on a parallel, fault-tolerant, resumable worker pool",
    )
    orchestrate.add_argument(
        "experiment_id",
        choices=[e for e in EXPERIMENT_IDS if e.startswith(("table", "figure"))],
    )
    orchestrate.add_argument("--profile", choices=("quick", "paper"), default=None)
    orchestrate.add_argument("--attacks", nargs="+", default=None)
    orchestrate.add_argument("--models", nargs="+", default=None)
    orchestrate.add_argument("--seed", type=int, default=0)
    orchestrate.add_argument(
        "--workers", type=int, default=None,
        help="worker processes (default: CPU count; 0 = run inline)",
    )
    orchestrate.add_argument(
        "--resume", action="store_true",
        help="replay the run ledger and re-run only incomplete tasks",
    )
    orchestrate.add_argument(
        "--task-timeout", type=float, default=None,
        help="per-task wall-clock limit in seconds (workers >= 1 only)",
    )
    orchestrate.add_argument(
        "--max-retries", type=int, default=2,
        help="retries per task before its cell is marked failed",
    )
    orchestrate.add_argument(
        "--run-dir", default=None,
        help="ledger directory (default: derived from the grid under the cache dir)",
    )
    federated = orchestrate.add_argument_group(
        "federated (tableF only)",
        "grid overrides for the sharded federated scheduler",
    )
    federated.add_argument(
        "--clients", type=int, nargs="+", default=None,
        help="client-count axis of the grid (e.g. --clients 64 256)",
    )
    federated.add_argument(
        "--fractions", type=float, nargs="+", default=None,
        help="malicious-fraction axis of the grid (e.g. --fractions 0.125 0.25)",
    )
    federated.add_argument("--rounds", type=int, default=None, help="federated rounds per cell")
    federated.add_argument(
        "--partition", choices=("iid", "dirichlet"), default=None,
        help="client data partition (default: dirichlet)",
    )
    federated.add_argument(
        "--alpha", type=float, default=None,
        help="Dirichlet concentration for non-IID sharding",
    )
    federated.add_argument(
        "--poison-ratio", type=float, default=None,
        help="malicious clients' per-round local poison fraction",
    )
    federated.add_argument(
        "--defenses", nargs="+", default=None, choices=sorted(DEFENSE_REGISTRY),
        help="server-side defense arms to run on the final global model",
    )

    attack = sub.add_parser("attack", help="train one backdoored model and report baseline metrics")
    attack.add_argument("attack_name", choices=sorted(ATTACK_REGISTRY))
    attack.add_argument("--model", choices=MODEL_NAMES, default="preact_resnet18")
    attack.add_argument("--dataset", choices=("synth_cifar", "synth_gtsrb"), default="synth_cifar")
    attack.add_argument("--epochs", type=int, default=6)
    attack.add_argument("--seed", type=int, default=0)

    defend = sub.add_parser("defend", help="attack then defend; report before/after metrics")
    defend.add_argument("attack_name", choices=sorted(ATTACK_REGISTRY))
    defend.add_argument("defense_name", choices=sorted(DEFENSE_REGISTRY))
    defend.add_argument("--model", choices=MODEL_NAMES, default="preact_resnet18")
    defend.add_argument("--dataset", choices=("synth_cifar", "synth_gtsrb"), default="synth_cifar")
    defend.add_argument("--spc", type=int, default=10)
    defend.add_argument("--epochs", type=int, default=6)
    defend.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve",
        help="long-lived defense-serving gateway: micro-batched inference, "
        "hot-swappable model registry, optional STRIP input filtering",
    )
    serve.add_argument("--model", choices=MODEL_NAMES, default="preact_resnet18")
    serve.add_argument("--dataset", choices=("synth_cifar", "synth_gtsrb"), default="synth_cifar")
    serve.add_argument(
        "--registry", default=None,
        help="model-registry directory (default: <cache dir>/registry)",
    )
    serve.add_argument("--alias", default="default", help="registry alias to serve and follow")
    serve.add_argument(
        "--workers", type=int, default=None,
        help="tiled-engine worker processes (default: engine heuristics)",
    )
    serve.add_argument("--max-batch", type=int, default=32, help="micro-batch flush size")
    serve.add_argument(
        "--max-wait-ms", type=float, default=5.0,
        help="deadline flush: max queueing delay for the oldest request",
    )
    serve.add_argument(
        "--strip", action=argparse.BooleanOptionalAction, default=False,
        help="STRIP entropy pre-filter (per-request clean/filtered verdicts)",
    )
    serve.add_argument(
        "--bootstrap", action=argparse.BooleanOptionalAction, default=True,
        help="publish a fresh --model checkpoint when the alias is empty",
    )
    serve.add_argument(
        "--http", type=int, default=None, metavar="PORT",
        help="also expose the gateway over HTTP on this port (0 = ephemeral)",
    )
    serve.add_argument(
        "--traffic", choices=("steady", "bursty", "adversarial"), default=None,
        help="drive the gateway with a synthetic traffic mix, print a report, exit",
    )
    serve.add_argument("--requests", type=int, default=96, help="requests per traffic mix")
    serve.add_argument("--seed", type=int, default=0)

    claims = sub.add_parser(
        "claims", help="check paper-shape claims against stored benchmark results"
    )
    claims.add_argument(
        "--dir", default="benchmarks/out", help="directory holding table*_<attack>.json files"
    )

    watch = sub.add_parser(
        "watch",
        help="live terminal dashboard over a run directory's ledger + telemetry streams",
    )
    watch.add_argument(
        "target",
        help="run directory (ledger.jsonl + telemetry*.jsonl) or a single JSONL file",
    )
    watch.add_argument(
        "--interval", type=float, default=1.0, help="poll/redraw period in seconds"
    )
    watch.add_argument(
        "--once", action="store_true",
        help="render one frame from the current file contents and exit",
    )
    watch.add_argument(
        "--duration", type=float, default=None,
        help="stop after this many seconds (default: run until ctrl-c)",
    )
    watch.add_argument("--width", type=int, default=78, help="dashboard width in columns")

    registry = sub.add_parser("registry", help="inspect and maintain the model registry")
    registry_sub = registry.add_subparsers(dest="registry_command", required=True)
    registry_gc = registry_sub.add_parser(
        "gc", help="delete checkpoints no alias points at (refuses aliased ones)"
    )
    registry_gc.add_argument(
        "--registry", default=None,
        help="registry directory (default: <cache dir>/registry)",
    )
    registry_gc.add_argument(
        "--dry-run", action="store_true",
        help="report what would be removed without deleting anything",
    )
    registry_gc.add_argument(
        "--keep", nargs="+", default=[],
        help="extra checkpoint keys (or prefixes) to pin besides aliased ones",
    )
    return parser


def _cmd_list() -> int:
    print("models:      " + ", ".join(MODEL_NAMES))
    print("attacks:     " + ", ".join(sorted(ATTACK_REGISTRY)))
    print("defenses:    " + ", ".join(sorted(DEFENSE_REGISTRY)))
    print("experiments: " + ", ".join(e for e in EXPERIMENT_IDS if e.startswith(("table", "figure"))))
    return 0


def _cmd_demo(args) -> int:
    # Reuse the quickstart example's flow without importing from examples/.
    import runpy
    import os

    example = os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))), "examples", "quickstart.py")
    argv = ["quickstart.py"]
    if args.fast:
        argv.append("--fast")
    argv += ["--spc", str(args.spc), "--seed", str(args.seed)]
    old_argv = sys.argv
    try:
        sys.argv = argv
        runpy.run_path(example, run_name="__main__")
    finally:
        sys.argv = old_argv
    return 0


def _cmd_experiment(args) -> int:
    spec = experiment_spec(args.experiment_id, profile=args.profile)
    result = run_experiment(
        spec,
        attacks=tuple(args.attacks) if args.attacks else None,
        models=tuple(args.models) if args.models else None,
        root_seed=args.seed,
    )
    print(result.table_text())
    return 0


def _cmd_orchestrate(args) -> int:
    import os

    workers = args.workers if args.workers is not None else (os.cpu_count() or 1)
    config = OrchestratorConfig(
        workers=workers,
        task_timeout=args.task_timeout,
        max_retries=args.max_retries,
        run_dir=args.run_dir,
        resume=args.resume,
    )
    if args.experiment_id in FEDERATED_EXPERIMENT_IDS:
        return _orchestrate_federated(args, config)
    spec = experiment_spec(args.experiment_id, profile=args.profile)
    orchestrator = Orchestrator(config)
    result = orchestrator.run(
        spec,
        attacks=tuple(args.attacks) if args.attacks else None,
        models=tuple(args.models) if args.models else None,
        root_seed=args.seed,
    )
    table = result.table_text()
    if table:
        print(table)
    print(result.summary())
    return 0 if result.ok else 1


def _orchestrate_federated(args, config) -> int:
    from .federated import FederatedOrchestrator, federated_spec

    overrides = {}
    if args.clients:
        overrides["client_counts"] = tuple(args.clients)
    if args.fractions:
        overrides["malicious_fractions"] = tuple(args.fractions)
    if args.rounds is not None:
        overrides["rounds"] = args.rounds
    if args.partition is not None:
        overrides["partition"] = args.partition
    if args.alpha is not None:
        overrides["alpha"] = args.alpha
    if args.poison_ratio is not None:
        overrides["poison_ratio"] = args.poison_ratio
    if args.defenses:
        overrides["defenses"] = tuple(args.defenses)
    overrides["seed"] = args.seed
    spec = federated_spec(args.profile, **overrides)
    result = FederatedOrchestrator(config).run(spec)
    print(result.table_text())
    print(result.summary())
    return 0 if result.ok else 1


def _scenario(args, attack_name: str) -> ScenarioConfig:
    num_classes = 10 if args.dataset == "synth_cifar" else 12
    return ScenarioConfig(
        dataset=args.dataset,
        model=args.model,
        attack=attack_name,
        num_classes=num_classes,
        train_epochs=args.epochs,
        seed=args.seed,
    )


def _cmd_attack(args) -> int:
    runner = BenchmarkRunner(verbose=True)
    scenario = runner.prepare(_scenario(args, args.attack_name))
    print(f"baseline ({args.attack_name} on {args.model}/{args.dataset}): {scenario.baseline}")
    return 0


def _cmd_defend(args) -> int:
    from .eval import DefenderBudget

    runner = BenchmarkRunner(verbose=True)
    scenario = runner.prepare(_scenario(args, args.attack_name))
    print(f"baseline: {scenario.baseline}")
    result = runner.run_defense_trial(
        scenario, args.defense_name, DefenderBudget(spc=args.spc, trial=0, seed=args.seed + 7)
    )
    print(f"after {args.defense_name} (SPC={args.spc}): {result.metrics}")
    return 0


def _cmd_serve(args) -> int:
    import json
    import os

    from .attacks import BadNetsAttack
    from .data import make_synth_cifar, make_synth_gtsrb
    from .nn.engine import WORKERS_ENV
    from .serving import (
        STANDARD_MIXES,
        ModelRegistry,
        ServeConfig,
        ServingGateway,
        TrafficGenerator,
        TrafficMix,
        serve_http,
    )

    if args.workers is not None:
        os.environ[WORKERS_ENV] = str(args.workers)

    registry_dir = args.registry or os.path.join(
        os.environ.get("REPRO_CACHE_DIR", os.path.expanduser("~/.cache/repro")), "registry"
    )
    registry = ModelRegistry(registry_dir)

    num_classes = 10 if args.dataset == "synth_cifar" else 12
    make = make_synth_cifar if args.dataset == "synth_cifar" else make_synth_gtsrb
    _, pool = make(n_train=2, n_test=128, num_classes=num_classes, seed=args.seed)

    if registry.resolve(args.alias) is None:
        if not args.bootstrap:
            print(f"alias {args.alias!r} is empty in {registry_dir} and --no-bootstrap is set")
            return 1
        from .models import build_model

        print(f"alias {args.alias!r} empty; bootstrapping an untrained {args.model} "
              "(publish a repaired checkpoint to replace it)")
        registry.publish(
            build_model(args.model, num_classes=num_classes, seed=args.seed),
            args.model,
            alias=args.alias,
            factory_kwargs={"num_classes": num_classes, "seed": args.seed},
            metadata={"bootstrap": True, "image_shape": list(pool.images.shape[1:])},
        )

    gateway = ServingGateway(
        registry,
        alias=args.alias,
        config=ServeConfig(
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            strip=args.strip,
            seed=args.seed,
        ),
        clean_pool=pool,
    )
    gateway.start()
    print(f"serving {gateway.active_key} (alias={args.alias}, strip={args.strip}, "
          f"max_batch={args.max_batch}, max_wait_ms={args.max_wait_ms})")

    http_server = None
    try:
        if args.http is not None:
            http_server = serve_http(gateway, port=args.http)
            host, port = http_server.address
            print(f"http front on http://{host}:{port} "
                  "(POST /predict, POST /swap, GET /healthz, GET /stats)")

        if args.traffic is not None:
            mix = next(m for m in STANDARD_MIXES if m.name == args.traffic)
            mix = TrafficMix(
                name=mix.name,
                num_requests=args.requests,
                rate=mix.rate,
                burst_size=mix.burst_size,
                gap_s=mix.gap_s,
                trigger_fraction=mix.trigger_fraction,
            )
            attack = (
                BadNetsAttack(image_shape=pool.images.shape[1:], seed=args.seed)
                if mix.trigger_fraction > 0
                else None
            )
            generator = TrafficGenerator(pool.images, attack=attack, seed=args.seed)
            report = generator.run(gateway, mix)
            print(json.dumps(report.summary(), indent=2, sort_keys=True))
            return 0

        if args.http is not None:
            print("serving until interrupted (ctrl-c to drain and exit)")
            try:
                while True:
                    import time

                    time.sleep(3600)
            except KeyboardInterrupt:
                print("draining...")
            return 0

        print("nothing to do: pass --traffic for a synthetic run or --http to serve")
        return 0
    finally:
        if http_server is not None:
            http_server.stop()
        gateway.stop()
        print(json.dumps({"final_stats": gateway.stats()}, indent=2, sort_keys=True))


def _cmd_claims(args) -> int:
    import glob
    import json
    import os

    from .eval import AggregateResult, BackdoorMetrics, check_table_claims, format_verdicts

    paths = sorted(glob.glob(os.path.join(args.dir, "table*_*.json")))
    if not paths:
        print(f"no table*_<attack>.json files under {args.dir}; run the benchmarks first")
        return 1
    any_failed = False
    for path in paths:
        with open(path) as handle:
            payload = json.load(handle)
        aggregates = [AggregateResult(**a) for a in payload["aggregates"]]
        baseline = BackdoorMetrics(**payload["baseline"]) if payload.get("baseline") else None
        if baseline is None:
            continue
        verdicts = check_table_claims(aggregates, baseline)
        name = os.path.splitext(os.path.basename(path))[0]
        print(format_verdicts(verdicts, header=name))
        any_failed |= any(not v.passed for v in verdicts)
    return 1 if any_failed else 0


def _cmd_watch(args) -> int:
    import os

    from .telemetry.watch import watch_paths

    if not os.path.exists(args.target):
        print(f"no such run directory or stream file: {args.target}")
        return 1
    state = watch_paths(
        args.target,
        interval=args.interval,
        once=args.once,
        duration=args.duration,
        width=args.width,
    )
    return 0 if state.events else 1


def _cmd_registry(args) -> int:
    import json
    import os

    from .serving import ModelRegistry

    registry_dir = args.registry or os.path.join(
        os.environ.get("REPRO_CACHE_DIR", os.path.expanduser("~/.cache/repro")), "registry"
    )
    if args.registry_command == "gc":
        if not os.path.isdir(registry_dir):
            print(f"no registry at {registry_dir}")
            return 1
        report = ModelRegistry(registry_dir).gc(dry_run=args.dry_run, keep=args.keep)
        print(json.dumps(report, indent=2, sort_keys=True))
        verb = "would remove" if args.dry_run else "removed"
        print(
            f"{verb} {len(report['removed'])} checkpoint(s), "
            f"kept {len(report['kept'])}, "
            f"{report['freed_bytes'] / 1024:.1f} KiB"
            + (" reclaimable" if args.dry_run else " reclaimed")
        )
        return 0
    raise AssertionError(f"unhandled registry command {args.registry_command!r}")


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "demo":
        return _cmd_demo(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "orchestrate":
        return _cmd_orchestrate(args)
    if args.command == "attack":
        return _cmd_attack(args)
    if args.command == "defend":
        return _cmd_defend(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "claims":
        return _cmd_claims(args)
    if args.command == "watch":
        return _cmd_watch(args)
    if args.command == "registry":
        return _cmd_registry(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
